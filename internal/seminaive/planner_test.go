package seminaive

import (
	"reflect"
	"sort"
	"testing"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
)

// mustRule parses a single rule.
func mustRule(t *testing.T, src string) ast.Rule {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p.Rules[0]
}

func TestPlanLeftToRightOrder(t *testing.T) {
	r := mustRule(t, "h(X, Y) :- a(X, Z), b(Z, Y), c(Y, X).")
	p := CompileWith(r, nil, PlanConfig{Mode: PlanLeftToRight})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(p.Order, want) {
		t.Fatalf("left-to-right order = %v, want %v", p.Order, want)
	}
	if p.Moved() != 0 {
		t.Fatalf("left-to-right moved %d atoms", p.Moved())
	}
}

func TestGreedyPrefersSmallerRelationOnTies(t *testing.T) {
	// With X bound by the first atom, b and c are equally bound (one bound
	// arg each); the greedy planner must pick the smaller relation next.
	r := mustRule(t, "h(X) :- a(X), b(X, Y), c(X, Z).")
	card := map[string]int{"a": 1, "b": 100, "c": 5}
	cfg := PlanConfig{Mode: PlanGreedy, Card: func(pred string) int { return card[pred] }}
	p := CompileWith(r, nil, cfg)
	if want := []int{0, 2, 1}; !reflect.DeepEqual(p.Order, want) {
		t.Fatalf("greedy order = %v, want %v (c before b: 5 < 100 rows)", p.Order, want)
	}
	if p.Moved() != 2 {
		t.Fatalf("Moved() = %d, want 2", p.Moved())
	}
}

func TestGreedySeedsAtConstantAtom(t *testing.T) {
	// No delta atom: the greedy start is the atom with the most constant
	// arguments, not atom 0.
	r := mustRule(t, "h(X, Y) :- e(X, Y), e(a, X).")
	cfg := PlanConfig{Mode: PlanGreedy, Card: func(string) int { return 10 }}
	p := CompileWith(r, nil, cfg)
	if p.Order[0] != 1 {
		t.Fatalf("greedy start = atom %d, want 1 (it has a constant)", p.Order[0])
	}
	// The legacy planner keeps atom 0 first (tie on zero bound args is
	// broken by body position: atom 0 scores 0, atom 1 scores 1... check
	// the actual legacy behavior instead of guessing).
	legacy := Compile(r, nil)
	if legacy.Order[0] != 0 {
		t.Fatalf("legacy start = atom %d, want 0", legacy.Order[0])
	}
}

func TestDefaultModeOrderUnchanged(t *testing.T) {
	// The zero-config Compile must produce the same order as before the
	// planner existed: first delta atom, then most-bound with lowest-index
	// ties — golden traces depend on it.
	r := mustRule(t, "h(X, Y) :- e(X, Z), t(Z, Y), e(Y, W).")
	ranges := []RangeKind{RangeFull, RangeDelta, RangeFull}
	p := Compile(r, ranges)
	if want := []int{1, 0, 2}; !reflect.DeepEqual(p.Order, want) {
		t.Fatalf("legacy delta order = %v, want %v", p.Order, want)
	}
	if p.Mode != PlanBoundness {
		t.Fatalf("default mode = %v", p.Mode)
	}
}

// buildChainStore returns a store with e = a 4-chain and t empty.
func buildChainStore() relation.Store {
	store := relation.Store{}
	e := relation.New(2)
	for i := 0; i < 4; i++ {
		e.Insert(relation.Tuple{ast.Value(i), ast.Value(i + 1)})
	}
	store["e"] = e
	return store
}

// enumerateAll drains a plan via Enumerate into sorted head tuples.
func enumerateAll(p *Plan, store relation.Store, w *Watermarks) []relation.Tuple {
	var out []relation.Tuple
	p.Enumerate(store, w, func(vals []ast.Value) bool {
		out = append(out, p.HeadTuple(vals))
		return true
	})
	sortTuples(out)
	return out
}

// streamAll drains the same plan via the Cursor.
func streamAll(p *Plan, store relation.Store, w *Watermarks) []relation.Tuple {
	cur := p.Stream(store, w)
	var out []relation.Tuple
	for cur.Next() {
		out = append(out, cur.Head())
	}
	sortTuples(out)
	return out
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func tuplesEqual(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestCursorMatchesEnumerate checks the streaming executor against the
// callback executor over joins, constants, repeated variables, negation
// and watermarked ranges, under every planner mode.
func TestCursorMatchesEnumerate(t *testing.T) {
	store := buildChainStore()
	neg := relation.New(2)
	neg.Insert(relation.Tuple{ast.Value(0), ast.Value(1)})
	store["bad"] = neg

	rules := []string{
		"h(X, Y) :- e(X, Y).",
		"h(X, Y) :- e(X, Z), e(Z, Y).",
		"h(X, Y) :- e(X, Z), e(Z, Y), e(Y, W).",
		"h(X, X) :- e(X, X).",
		"h(X, Y) :- e(X, Y), !bad(X, Y).",
	}
	w := &Watermarks{
		Prev: map[string]int{"e": 1},
		Cur:  map[string]int{"e": 3},
	}
	for _, src := range rules {
		r := mustRule(t, src)
		for _, mode := range []PlanMode{PlanBoundness, PlanGreedy, PlanLeftToRight} {
			cfg := PlanConfig{Mode: mode, Card: func(pred string) int {
				if rel, ok := store[pred]; ok {
					return rel.Len()
				}
				return 0
			}}
			for _, ranges := range [][]RangeKind{nil, make([]RangeKind, len(r.Body))} {
				p := CompileWith(r, ranges, cfg)
				var wm *Watermarks
				if ranges != nil {
					ranges[0] = RangeDelta
					wm = w
				}
				want := enumerateAll(p, store, wm)
				got := streamAll(p, store, wm)
				if !tuplesEqual(got, want) {
					t.Fatalf("%s mode=%v wm=%v: cursor %v != enumerate %v", src, mode, wm != nil, got, want)
				}
			}
		}
	}
}

// TestCursorBodilessConstructed checks the fire-once path.
func TestCursorBodilessConstructed(t *testing.T) {
	r := ast.Rule{Head: ast.NewAtom("h", ast.C(7))}
	p := Compile(r, nil)
	cur := p.Stream(relation.Store{}, nil)
	if !cur.Next() {
		t.Fatal("bodiless rule should fire once")
	}
	if got := cur.Head(); got[0] != 7 {
		t.Fatalf("head = %v", got)
	}
	if cur.Next() {
		t.Fatal("bodiless rule fired twice")
	}
}
