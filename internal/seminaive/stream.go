package seminaive

import (
	"parlog/internal/ast"
	"parlog/internal/relation"
)

// Cursor is a single-use streaming enumeration of a plan: the pull-based
// counterpart of Plan.Enumerate, composed from the relation package's
// probe→join→select iterators. Each call to Next suspends the backtracking
// join at the next satisfying ground substitution instead of driving a
// callback, which is what lets Query hand tuples out one at a time.
//
// A cursor holds per-level iterators over the columnar arena; the store
// must not lose relations while the cursor is live (inserts are fine — the
// bounds were captured at open time, matching Enumerate's semantics).
type Cursor struct {
	p     *Plan
	store relation.Store
	w     *Watermarks

	vals    []ast.Value
	iters   []relation.Iterator
	depth   int
	started bool
	done    bool
	fired   int64

	lookup []ast.Value
	hargs  []ast.Value
	negBuf relation.Tuple

	// prof is the plan's runtime counters, captured at Stream time; nil
	// keeps the pull loops on the zero-overhead path.
	prof *planProfile
}

// Stream opens a cursor over the plan's enumeration under watermarks w
// (nil for full extents).
func (p *Plan) Stream(store relation.Store, w *Watermarks) *Cursor {
	return &Cursor{
		p:      p,
		store:  store,
		w:      w,
		vals:   make([]ast.Value, len(p.slotOf)),
		iters:  make([]relation.Iterator, len(p.atoms)),
		lookup: make([]ast.Value, 0, 8),
		hargs:  make([]ast.Value, 0, 8),
		negBuf: make(relation.Tuple, 0, 8),
		prof:   p.prof,
	}
}

// Vals exposes the slot-value array of the current substitution; valid
// after Next returns true, reused by the following Next.
func (c *Cursor) Vals() []ast.Value { return c.vals }

// Head instantiates the rule head from the current substitution (freshly
// allocated, safe to retain).
func (c *Cursor) Head() relation.Tuple { return c.p.HeadTuple(c.vals) }

// Fired reports the substitutions yielded so far.
func (c *Cursor) Fired() int64 { return c.fired }

// Next advances to the next satisfying ground substitution; false means
// the enumeration is exhausted.
func (c *Cursor) Next() bool {
	if c.done {
		return false
	}
	if !c.started {
		c.started = true
		if !c.preChecks() {
			c.done = true
			return false
		}
		if len(c.p.atoms) == 0 {
			// A bodiless rule (ground head, by safety) fires once.
			c.done = true
			c.fired++
			return true
		}
		c.depth = 0
		c.iters[0] = c.open(0)
	} else {
		// Resume below the last yielded substitution.
		c.depth = len(c.p.atoms) - 1
	}
	for {
		if c.depth < 0 {
			c.done = true
			return false
		}
		if !c.advance(c.depth) {
			c.depth--
			continue
		}
		if c.depth == len(c.p.atoms)-1 {
			c.fired++
			return true
		}
		c.depth++
		c.iters[c.depth] = c.open(c.depth)
	}
}

// open builds the iterator for execution position k under the current
// bindings: an index probe on the bound columns restricted to the atom's
// semi-naive range.
func (c *Cursor) open(k int) relation.Iterator {
	ae := &c.p.atoms[k]
	rel, ok := c.store[ae.pred]
	if !ok || rel.Len() == 0 {
		return nil
	}
	lo, hi := c.w.bounds(ae.pred, ae.kind, rel.NumRows())
	if lo >= hi {
		return nil
	}
	c.lookup = c.lookup[:0]
	for _, src := range ae.boundSrc {
		if src.slot >= 0 {
			c.lookup = append(c.lookup, c.vals[src.slot])
		} else {
			c.lookup = append(c.lookup, src.value)
		}
	}
	if c.prof != nil {
		c.prof.atoms[k].Probes++
	}
	return relation.Probe(rel, ae.boundCols, c.lookup, lo, hi)
}

// advance pulls rows at position k until one satisfies the atom's check
// columns, constraints and negations, binding its free slots; false means
// the level is exhausted.
func (c *Cursor) advance(k int) bool {
	it := c.iters[k]
	if it == nil {
		return false
	}
	ae := &c.p.atoms[k]
	var pa *AtomProfile
	if c.prof != nil {
		pa = &c.prof.atoms[k]
	}
	for {
		tuple := it.Next()
		if tuple == nil {
			return false
		}
		if pa != nil {
			pa.Rows++
		}
		for ci, col := range ae.freeCols {
			c.vals[ae.freeSlots[ci]] = tuple[col]
		}
		if !c.rowChecks(ae, tuple) {
			continue
		}
		if pa != nil {
			pa.Matches++
		}
		return true
	}
}

// rowChecks applies an atom's repeated-variable checks, constraints and
// negation probes to the current bindings.
func (c *Cursor) rowChecks(ae *atomExec, tuple relation.Tuple) bool {
	for ci, col := range ae.checkCols {
		if tuple[col] != c.vals[ae.checkSlots[ci]] {
			return false
		}
	}
	for _, cc := range ae.constraints {
		if !c.check(cc) {
			return false
		}
	}
	for _, cn := range ae.negations {
		if !c.negAbsent(cn) {
			return false
		}
	}
	return true
}

// preChecks evaluates the variable-free constraints and ground negations
// once, before enumeration (Enumerate's zeroChecks/zeroNegs pass).
func (c *Cursor) preChecks() bool {
	for _, cc := range c.p.zeroChecks {
		if len(cc.slots) > 0 {
			panic("seminaive: constraint on unbound variables")
		}
		if !c.check(cc) {
			return false
		}
	}
	for _, cn := range c.p.zeroNegs {
		if !c.negAbsent(cn) {
			return false
		}
	}
	return true
}

func (c *Cursor) check(cc compiledConstraint) bool {
	c.hargs = c.hargs[:0]
	for _, s := range cc.slots {
		c.hargs = append(c.hargs, c.vals[s])
	}
	return cc.h.Fn(c.hargs) == cc.proc
}

func (c *Cursor) negAbsent(cn compiledNegation) bool {
	rel, ok := c.store[cn.pred]
	if !ok || rel.Len() == 0 {
		return true
	}
	c.negBuf = c.negBuf[:0]
	for _, s := range cn.src {
		if s.slot >= 0 {
			c.negBuf = append(c.negBuf, c.vals[s.slot])
		} else {
			c.negBuf = append(c.negBuf, s.value)
		}
	}
	return !rel.Contains(c.negBuf)
}
