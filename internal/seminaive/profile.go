package seminaive

import (
	"fmt"
	"strings"
	"time"

	"parlog/internal/ast"
)

// AtomProfile is the runtime account of one body atom (indexed by textual
// body position, whatever execution order the planner chose): how many index
// lookups the join level issued, how many live rows those lookups returned,
// and how many of them survived the level's check columns, constraints and
// negation probes to feed the next level. Planned is the cardinality the
// planner saw at compile time (-1 when it compiled without statistics), so
// an explain-analyze report can show planned-vs-actual side by side.
type AtomProfile struct {
	Pred    string
	Probes  int64
	Rows    int64
	Matches int64
	Planned int64
}

// ProcProfile is one worker's share of a rule's runtime: the parallel and
// distributed engines attach one entry per processor that evaluated the
// rule, which is what makes per-rule skew visible after the merge.
type ProcProfile struct {
	Proc    int
	Firings int64
	Dup     int64
	WallNs  int64
}

// RuleProfile is the runtime account of one rule: Definition 4 firings
// (successful ground substitutions after constraints), the tuples that
// survived dedup (New) and the rederivations (Dup), the number of
// enumeration passes and their wall time, per-atom join counters, and —
// on the parallel engines — per-processor attribution. All fields are
// exported and flat so a record travels the distributed runtime's gob
// control envelope unchanged.
type RuleProfile struct {
	// Key is the merge key: the rule formatted with its constraints
	// stripped, so the per-worker variants of one source rule (differing
	// only in their h_i(seq)=i restriction constraint) fold into a single
	// entry across workers and across the wire.
	Key  string
	Pred string

	Firings    int64
	New        int64
	Dup        int64
	Iterations int64
	WallNs     int64

	Atoms []AtomProfile
	Procs []ProcProfile
}

// merge folds another record of the same rule (same Key) into rp.
func (rp *RuleProfile) merge(o *RuleProfile) {
	rp.Firings += o.Firings
	rp.New += o.New
	rp.Dup += o.Dup
	rp.Iterations += o.Iterations
	rp.WallNs += o.WallNs
	if rp.Pred == "" {
		rp.Pred = o.Pred
	}
	for len(rp.Atoms) < len(o.Atoms) {
		rp.Atoms = append(rp.Atoms, AtomProfile{Planned: -1})
	}
	for i := range o.Atoms {
		a, b := &rp.Atoms[i], &o.Atoms[i]
		if a.Pred == "" {
			a.Pred = b.Pred
		}
		a.Probes += b.Probes
		a.Rows += b.Rows
		a.Matches += b.Matches
		if b.Planned > a.Planned {
			a.Planned = b.Planned
		}
	}
	for _, pp := range o.Procs {
		rp.addProc(pp)
	}
}

// addProc folds one processor attribution in, summing with an existing
// entry for the same processor (a stratified run evaluates the same rule
// set once per stratum on the same workers).
func (rp *RuleProfile) addProc(pp ProcProfile) {
	for i := range rp.Procs {
		if rp.Procs[i].Proc == pp.Proc {
			rp.Procs[i].Firings += pp.Firings
			rp.Procs[i].Dup += pp.Dup
			rp.Procs[i].WallNs += pp.WallNs
			return
		}
	}
	rp.Procs = append(rp.Procs, pp)
}

// ProfileKey returns the merge key of a rule's profile records: the rule
// formatted with its constraints stripped. The per-processor copies of a
// rewritten rule differ only in their restriction constraint, so keying on
// the constraint-free text is what lets N workers' records merge into one
// line per source rule.
func ProfileKey(prog *ast.Program, r ast.Rule) string {
	r.Constraints = nil
	return prog.FormatRule(r)
}

// Profile is the runtime profile of one evaluation — the analyze half of
// explain-analyze. Rules appear in first-recorded (compile) order, the same
// order the static plan report uses.
type Profile struct {
	// Engine names the engine that produced (or merged) the profile:
	// seminaive, naive, parallel or dist.
	Engine string
	// WallNs is the end-to-end evaluation wall time.
	WallNs int64
	Rules  []*RuleProfile
}

// Rule returns the record for key, creating it if absent.
func (p *Profile) Rule(key, pred string) *RuleProfile {
	for _, rp := range p.Rules {
		if rp.Key == key {
			return rp
		}
	}
	rp := &RuleProfile{Key: key, Pred: pred}
	p.Rules = append(p.Rules, rp)
	return rp
}

// Add merges one rule record into the profile.
func (p *Profile) Add(rp *RuleProfile) {
	if rp == nil {
		return
	}
	p.Rule(rp.Key, rp.Pred).merge(rp)
}

// AddRules merges a batch of rule records (a worker's contribution).
func (p *Profile) AddRules(rps []*RuleProfile) {
	for _, rp := range rps {
		p.Add(rp)
	}
}

// Merge folds another profile into p, rule records keyed by Key and wall
// time taking the maximum (concurrent engines overlap; their spans do not
// add).
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	if o.WallNs > p.WallNs {
		p.WallNs = o.WallNs
	}
	p.AddRules(o.Rules)
}

// TotalFirings sums Definition 4 firings over all rules — the quantity the
// differential tests compare against the counting sink and the sequential
// reference.
func (p *Profile) TotalFirings() int64 {
	var n int64
	for _, rp := range p.Rules {
		n += rp.Firings
	}
	return n
}

// FiringsByPred sums firings per head predicate.
func (p *Profile) FiringsByPred() map[string]int64 {
	out := make(map[string]int64, len(p.Rules))
	for _, rp := range p.Rules {
		out[rp.Pred] += rp.Firings
	}
	return out
}

// String renders the profile as stable, line-oriented analyze text: one
// block per rule with firing/dedup/iteration counters, per-atom
// planned-vs-actual join cardinalities, and per-worker attribution when
// present. Wall times are the only machine-varying tokens; golden tests
// normalize the "wall=…" fields.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analyze: engine=%s wall=%s\n", p.Engine, time.Duration(p.WallNs))
	for _, rp := range p.Rules {
		fmt.Fprintf(&b, "rule %s\n", rp.Key)
		fmt.Fprintf(&b, "  firings=%d new=%d dup=%d iterations=%d wall=%s\n",
			rp.Firings, rp.New, rp.Dup, rp.Iterations, time.Duration(rp.WallNs))
		for i, a := range rp.Atoms {
			planned := "?"
			if a.Planned >= 0 {
				planned = fmt.Sprintf("%d", a.Planned)
			}
			fmt.Fprintf(&b, "  atom %d %s: probes=%d rows=%d matches=%d planned=%s\n",
				i, a.Pred, a.Probes, a.Rows, a.Matches, planned)
		}
		for _, pp := range rp.Procs {
			fmt.Fprintf(&b, "  proc %d: firings=%d dup=%d wall=%s\n",
				pp.Proc, pp.Firings, pp.Dup, time.Duration(pp.WallNs))
		}
	}
	return b.String()
}

// planProfile holds a plan's per-execution-position runtime counters.
// Allocated only by EnableProfile: a nil pointer is the disabled state, and
// the enumeration loops pay one hoisted nil check for it.
type planProfile struct {
	atoms []AtomProfile
}

// EnableProfile arms runtime counters on the plan. Idempotent; call before
// Enumerate or Stream. Plans are engine- or worker-local, so the counters
// are deliberately plain int64s, not atomics.
func (p *Plan) EnableProfile() {
	if p.prof == nil {
		p.prof = &planProfile{atoms: make([]AtomProfile, len(p.atoms))}
	}
}

// WithProfile returns a shallow copy of the plan with freshly armed runtime
// counters, leaving the receiver untouched. Engines that share compiled plans
// across nodes or across runs (the parallel Program's per-worker rule sets)
// profile through per-node copies so counters never leak between runs.
func (p *Plan) WithProfile() *Plan {
	cp := *p
	cp.prof = &planProfile{atoms: make([]AtomProfile, len(cp.atoms))}
	return &cp
}

// ProfileInto folds the plan's accumulated counters into rp, mapping
// execution positions back to textual body positions so delta variants of
// one rule (which permute the order) land on the same atoms. Call exactly
// once per plan, after its last enumeration; a plan that never had
// EnableProfile called is a no-op.
func (p *Plan) ProfileInto(rp *RuleProfile) {
	if p.prof == nil {
		return
	}
	for len(rp.Atoms) < len(p.Rule.Body) {
		rp.Atoms = append(rp.Atoms, AtomProfile{Planned: -1})
	}
	for k, idx := range p.Order {
		a := &rp.Atoms[idx]
		a.Pred = p.Rule.Body[idx].Pred
		a.Probes += p.prof.atoms[k].Probes
		a.Rows += p.prof.atoms[k].Rows
		a.Matches += p.prof.atoms[k].Matches
		if p.planned[k] > a.Planned {
			a.Planned = p.planned[k]
		}
	}
}
