package seminaive

import (
	"fmt"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/relation"
)

// Incremental view maintenance: counting-based insert propagation plus
// DRed-style (delete and rederive) deletion, over the same arena watermarks
// that drive semi-naive evaluation.
//
// Every relation runs in counted mode: a tuple's count is the number of its
// base supports (EDB presence, program fact) plus the number of successful
// rule firings deriving it — the immediate-consequence count, which is
// independent of evaluation order, so the exactly-once delta decomposition
// of DeltaVariants computes it for free during materialization and insert
// propagation. Deletions go through DRed: an overdeletion fixpoint marks
// everything whose support might be gone (so the counts of every unmarked
// tuple are untouched by construction), the marked rows are killed, and a
// rederivation fixpoint revives marked tuples that still have support from
// the surviving model, recomputing their counts exactly.
//
// Newly-live tuples always occupy freshly appended rows (rebirth appends
// and repoints, see relation.InsertDelta), so "the tuples that became live
// since row watermark w" is exactly the row range [w, NumRows) filtered by
// liveness — maintenance reuses Plan.Enumerate and DeltaVariants verbatim.

// base-support bits, stored per physical row in IVM.sup.
const (
	supEDB  uint8 = 1 << 0 // present in the (mutable) EDB input
	supFact uint8 = 1 << 1 // program fact; permanent, Apply cannot remove it
)

func supCount(bits uint8) int32 { return int32(bits&1 + bits>>1&1) }

// delPred names the scratch overdeletion relation of pred.
func delPred(pred string) string { return pred + "@del" }

// MaintainStats reports what one Apply did.
type MaintainStats struct {
	// Inserted and Deleted count the net live-set changes (all predicates,
	// base and derived).
	Inserted, Deleted int
	// Overdeleted counts tuples killed by the DRed overdeletion pass;
	// Rederived counts how many of them came back.
	Overdeleted, Rederived int
	// Firings is the maintenance passes' derived work: successful ground
	// substitutions enumerated while propagating the delta — the quantity
	// E19 compares against a from-scratch refixpoint.
	Firings int64
	// Iterations counts semi-naive rounds across all maintenance passes.
	Iterations int
}

// IVM is an incrementally maintained materialization of a program's least
// model. Not safe for concurrent use — the caller (parlog.View) serializes
// Apply against snapshotting.
type IVM struct {
	prog    *ast.Program
	rules   []ast.Rule
	arities map[string]int
	store   relation.Store
	sup     map[string][]uint8 // per-row base-support bits, parallel to rows
	opts    Options
	cfg     PlanConfig

	headRules map[string][]ast.Rule // rules grouped by head predicate
	sccs      [][]string
	sccRules  [][]ast.Rule // rules whose head is in SCC i
	inSCC     []map[string]bool

	delPlans    []delPlan // overdeletion variants, one per (rule, body pos)
	revivePlans [][]*Plan // rederivation delta variants, per rule
}

type delPlan struct {
	head string // real head predicate
	plan *Plan  // compiled over the @del-renamed rule
}

// NewIVM materializes prog over edb with counting and returns the handle
// plus the materialization's evaluation stats. Negation, constraints and
// naive mode are not supported — maintenance rules must stay plain
// range-restricted Datalog.
func NewIVM(prog *ast.Program, edb relation.Store, opts Options) (*IVM, *Stats, error) {
	if opts.Naive {
		return nil, nil, fmt.Errorf("seminaive: naive iteration does not support incremental maintenance")
	}
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, nil, err
	}
	if analysis.HasNegation(prog) {
		return nil, nil, fmt.Errorf("seminaive: incremental maintenance does not support negation")
	}
	rules, facts := prog.FactTuples()
	for _, r := range rules {
		if len(r.Constraints) > 0 {
			return nil, nil, fmt.Errorf("seminaive: incremental maintenance does not support constraints")
		}
	}
	arities := prog.Arities()
	for pred, r := range edb {
		if want, ok := arities[pred]; ok && r.Arity() != want {
			return nil, nil, fmt.Errorf("seminaive: EDB relation %s has arity %d, program uses %d", pred, r.Arity(), want)
		}
		if _, ok := arities[pred]; !ok {
			arities[pred] = r.Arity()
		}
	}

	m := &IVM{
		prog:      prog,
		rules:     rules,
		arities:   arities,
		store:     relation.Store{},
		sup:       map[string][]uint8{},
		opts:      opts,
		headRules: map[string][]ast.Rule{},
	}
	m.cfg = PlanConfig{Mode: opts.Planner, Card: func(pred string) int {
		if rel, ok := m.store[pred]; ok {
			return rel.Len()
		}
		return 0
	}}
	for pred, ar := range arities {
		rel := relation.New(ar)
		rel.EnableCounts(0)
		m.store[pred] = rel
	}
	for _, r := range rules {
		m.headRules[r.Head.Pred] = append(m.headRules[r.Head.Pred], r)
	}

	// Base supports: the EDB input and the program's facts.
	for pred, rel := range edb {
		for _, t := range rel.Rows() {
			m.addSupport(pred, t, supEDB)
		}
	}
	for pred, tuples := range facts {
		for _, t := range tuples {
			m.addSupport(pred, t, supFact)
		}
	}

	// SCC structure, mirroring Eval.
	g := analysis.Dependencies(prog)
	m.sccs = g.SCCs()
	comp := map[string]int{}
	for i, scc := range m.sccs {
		for _, p := range scc {
			comp[p] = i
		}
	}
	m.sccRules = make([][]ast.Rule, len(m.sccs))
	m.inSCC = make([]map[string]bool, len(m.sccs))
	for i, scc := range m.sccs {
		m.inSCC[i] = map[string]bool{}
		for _, p := range scc {
			m.inSCC[i][p] = true
		}
	}
	for _, r := range rules {
		i := comp[r.Head.Pred]
		m.sccRules[i] = append(m.sccRules[i], r)
	}

	// Overdeletion variants: p@del :- a1, …, ai@del, …, ak — one per body
	// position, delta on the @del atom, every other atom reading the full
	// pre-deletion extent. Set semantics, so planner exactness is not
	// needed; compiled once, reused by every Apply.
	for _, r := range rules {
		for i := range r.Body {
			dr := ast.Rule{Head: r.Head.Clone(), Body: make([]ast.Atom, len(r.Body))}
			dr.Head.Pred = delPred(r.Head.Pred)
			for j, a := range r.Body {
				dr.Body[j] = a.Clone()
			}
			dr.Body[i].Pred = delPred(dr.Body[i].Pred)
			ranges := make([]RangeKind, len(dr.Body))
			ranges[i] = RangeDelta
			m.delPlans = append(m.delPlans, delPlan{
				head: r.Head.Pred,
				plan: CompileWith(dr, ranges, PlanConfig{Mode: m.cfg.Mode}),
			})
		}
	}
	// Rederivation variants: delta on every body position (revived tuples
	// can sit anywhere in a body).
	m.revivePlans = make([][]*Plan, len(rules))
	for ri, r := range rules {
		all := make([]int, len(r.Body))
		for i := range all {
			all[i] = i
		}
		m.revivePlans[ri] = DeltaVariantsWith(r, all, PlanConfig{Mode: m.cfg.Mode})
	}

	stats, err := m.materialize()
	if err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// Store returns the live counted store. Callers must treat it as read-only;
// snapshot readers should use SnapshotStore.
func (m *IVM) Store() relation.Store { return m.store }

// SnapshotStore compacts every relation's live extent into immutable
// plain-mode relations sharing the arena where possible (relation.Compact).
func (m *IVM) SnapshotStore() relation.Store {
	out := make(relation.Store, len(m.store))
	for pred, rel := range m.store {
		out[pred] = rel.Compact()
	}
	return out
}

// IsEDB reports whether pred is a base predicate (never a rule head) —
// the only predicates Apply accepts deltas for.
func (m *IVM) IsEDB(pred string) bool {
	_, ok := m.store[pred]
	return ok && len(m.headRules[pred]) == 0
}

// Arity returns pred's arity, or -1 if unknown.
func (m *IVM) Arity(pred string) int {
	if ar, ok := m.arities[pred]; ok {
		return ar
	}
	return -1
}

// addSupport adds one base-support bit to t, inserting it if needed.
// Adding a bit the tuple already has is a no-op (set semantics per kind).
func (m *IVM) addSupport(pred string, t relation.Tuple, bit uint8) bool {
	rel := m.store[pred]
	row := rel.LookupRow(t)
	if row >= 0 && rel.Alive(row) {
		if m.sup[pred][row]&bit != 0 {
			return false
		}
		m.sup[pred][row] |= bit
		rel.AddDelta(row, 1)
		return true
	}
	row, _ = rel.InsertDelta(t, 1)
	m.pad(pred)
	m.sup[pred][row] = bit
	return true
}

// pad grows pred's support column to the relation's physical length.
func (m *IVM) pad(pred string) {
	rel := m.store[pred]
	s := m.sup[pred]
	for len(s) < rel.NumRows() {
		s = append(s, 0)
	}
	m.sup[pred] = s
}

// interrupted proxies the options' cancellation check.
func (m *IVM) interrupted() error { return m.opts.interrupted() }

// materialize runs the initial counted fixpoint, SCC by SCC — evalSCC with
// InsertDelta so every successful firing increments its head's count.
func (m *IVM) materialize() (*Stats, error) {
	stats := newStats()
	for i := range m.sccs {
		var nonRec []ast.Rule
		var rec []ast.Rule
		var recAtoms [][]int
		for _, r := range m.sccRules[i] {
			var ra []int
			for j, a := range r.Body {
				if m.inSCC[i][a.Pred] {
					ra = append(ra, j)
				}
			}
			if len(ra) > 0 {
				rec = append(rec, r)
				recAtoms = append(recAtoms, ra)
			} else {
				nonRec = append(nonRec, r)
			}
		}
		if len(nonRec) == 0 && len(rec) == 0 {
			continue
		}

		for _, r := range nonRec {
			plan := CompileWith(r, nil, m.cfg)
			rel := m.store[r.Head.Pred]
			buf := make(relation.Tuple, r.Head.Arity())
			n := plan.Enumerate(m.store, nil, func(vals []ast.Value) bool {
				if _, fresh := rel.InsertDelta(plan.HeadTupleInto(buf, vals), 1); fresh {
					stats.New++
				}
				return true
			})
			m.pad(r.Head.Pred)
			stats.Firings += n
			stats.FiringsByPred[r.Head.Pred] += n
		}
		if len(rec) == 0 {
			continue
		}

		var plans [][]*Plan
		for ri, r := range rec {
			plans = append(plans, DeltaVariantsWith(r, recAtoms[ri], m.cfg))
		}
		w := &Watermarks{Prev: map[string]int{}, Cur: map[string]int{}}
		for p := range m.inSCC[i] {
			w.Prev[p] = 0
			w.Cur[p] = m.store[p].NumRows()
		}
		for {
			stats.Iterations++
			if m.opts.MaxIterations > 0 && stats.Iterations > m.opts.MaxIterations {
				return nil, fmt.Errorf("seminaive: exceeded %d iterations", m.opts.MaxIterations)
			}
			if err := m.interrupted(); err != nil {
				return nil, err
			}
			var fresh int64
			for ri, r := range rec {
				rel := m.store[r.Head.Pred]
				buf := make(relation.Tuple, r.Head.Arity())
				var n int64
				for _, plan := range plans[ri] {
					n += plan.Enumerate(m.store, w, func(vals []ast.Value) bool {
						if _, f := rel.InsertDelta(plan.HeadTupleInto(buf, vals), 1); f {
							fresh++
						}
						return true
					})
				}
				m.pad(r.Head.Pred)
				stats.Firings += n
				stats.FiringsByPred[r.Head.Pred] += n
			}
			stats.New += fresh
			if fresh == 0 {
				break
			}
			for p := range m.inSCC[i] {
				w.Prev[p] = w.Cur[p]
				w.Cur[p] = m.store[p].NumRows()
			}
		}
	}
	return stats, nil
}

// Apply absorbs one batch of EDB deletes and inserts (deletes first) and
// restores the counting invariant for every live tuple. Both maps are
// per-predicate tuple lists; predicates must be base (IsEDB). Deleting an
// absent tuple or inserting a present one is a no-op.
func (m *IVM) Apply(deletes, inserts map[string][]relation.Tuple) (*MaintainStats, error) {
	st := &MaintainStats{}
	for pred, ts := range deletes {
		if !m.IsEDB(pred) {
			return nil, fmt.Errorf("seminaive: cannot delete from %q: not a base (EDB) predicate", pred)
		}
		for _, t := range ts {
			if len(t) != m.store[pred].Arity() {
				return nil, fmt.Errorf("seminaive: delete %s: arity %d, want %d", pred, len(t), m.store[pred].Arity())
			}
		}
	}
	for pred, ts := range inserts {
		if !m.IsEDB(pred) {
			return nil, fmt.Errorf("seminaive: cannot insert into %q: not a base (EDB) predicate", pred)
		}
		for _, t := range ts {
			if len(t) != m.store[pred].Arity() {
				return nil, fmt.Errorf("seminaive: insert %s: arity %d, want %d", pred, len(t), m.store[pred].Arity())
			}
		}
	}
	if err := m.applyDeletes(deletes, st); err != nil {
		return nil, err
	}
	if err := m.applyInserts(inserts, st); err != nil {
		return nil, err
	}
	return st, nil
}

// applyDeletes runs DRed: seed the overdeletion with the EDB tuples whose
// last support is being removed, propagate the overdeletion to a fixpoint
// over the pre-deletion extent, kill every marked row, then revive marked
// tuples that still have support and recompute their counts exactly.
func (m *IVM) applyDeletes(deletes map[string][]relation.Tuple, st *MaintainStats) error {
	type markedTuple struct {
		pred  string
		tuple relation.Tuple
		bits  uint8
	}
	var marked []markedTuple
	markedBits := map[string]map[string]uint8{} // pred → tuple key → bits

	mark := func(pred string, t relation.Tuple, bits uint8) {
		marked = append(marked, markedTuple{pred, t, bits})
		mb := markedBits[pred]
		if mb == nil {
			mb = map[string]uint8{}
			markedBits[pred] = mb
		}
		mb[t.Key()] = bits
	}

	// Seed: remove the EDB support bit; a tuple whose only support it was
	// enters the overdeletion set. Seeds are NOT killed yet — the
	// overdeletion fixpoint must run over the full pre-deletion extent, or
	// a firing joining two dying tuples would be invisible to every delta
	// variant.
	delStore := relation.Store{}
	seeded := false
	for pred, ts := range deletes {
		rel := m.store[pred]
		for _, t := range ts {
			row := rel.LookupRow(t)
			if row < 0 || !rel.Alive(row) || m.sup[pred][row]&supEDB == 0 {
				continue
			}
			m.sup[pred][row] &^= supEDB
			if rel.CountOf(row) == 1 {
				// Its one support is gone (an EDB predicate has no rule
				// derivations; a fact bit would make the count 2): mark,
				// defer the kill.
				mark(pred, t.Clone(), m.sup[pred][row])
				delStore.Get(delPred(pred), rel.Arity()).Insert(t)
				seeded = true
			} else {
				rel.AddDelta(row, -1)
			}
		}
	}
	if !seeded {
		return nil
	}

	// Overdelete fixpoint over the combined store: real relations keep
	// their full pre-deletion extents (marked rows are not killed until
	// after the fixpoint), @del relations grow semi-naively. Real preds get
	// no watermark entries, so RangeFull positions read their full extents.
	combined := make(relation.Store, 2*len(m.store))
	for p, r := range m.store {
		combined[p] = r
		combined[delPred(p)] = delStore.Get(delPred(p), r.Arity())
	}
	w := &Watermarks{Prev: map[string]int{}, Cur: map[string]int{}}
	for pred := range m.store {
		dp := delPred(pred)
		w.Prev[dp] = 0
		w.Cur[dp] = delStore[dp].NumRows()
	}
	for {
		st.Iterations++
		if m.opts.MaxIterations > 0 && st.Iterations > m.opts.MaxIterations {
			return fmt.Errorf("seminaive: overdeletion exceeded %d iterations", m.opts.MaxIterations)
		}
		if err := m.interrupted(); err != nil {
			return err
		}
		fresh := 0
		for _, dp := range m.delPlans {
			rel := m.store[dp.head]
			dRel := delStore[delPred(dp.head)]
			buf := make(relation.Tuple, rel.Arity())
			n := dp.plan.Enumerate(combined, w, func(vals []ast.Value) bool {
				t := dp.plan.HeadTupleInto(buf, vals)
				if dRel.Insert(t) {
					fresh++
					row := rel.LookupRow(t)
					// Every overdeleted tuple is derivable from tuples in
					// the pre-deletion model, hence present and alive.
					mark(dp.head, t.Clone(), m.sup[dp.head][row])
				}
				return true
			})
			st.Firings += n
		}
		if fresh == 0 {
			break
		}
		for pred := range m.store {
			dp := delPred(pred)
			w.Prev[dp] = w.Cur[dp]
			w.Cur[dp] = delStore[dp].NumRows()
		}
	}

	// Kill every marked row (seeds included).
	for _, mk := range marked {
		rel := m.store[mk.pred]
		row := rel.LookupRow(mk.tuple)
		rel.AddDelta(row, -rel.CountOf(row))
		m.sup[mk.pred][row] = 0
		st.Overdeleted++
	}

	// Rederive: revive marked tuples that still have base support or a
	// derivation from the surviving model, then propagate revivals to a
	// fixpoint. Revivals append fresh rows, so real-predicate watermarks
	// delimit each round's delta.
	baseN := map[string]int{}
	for pred, rel := range m.store {
		baseN[pred] = rel.NumRows()
	}
	type revivedTuple struct {
		pred  string
		tuple relation.Tuple
		row   int
		bits  uint8
	}
	var revived []revivedTuple
	revive := func(pred string, t relation.Tuple, bits uint8) {
		rel := m.store[pred]
		row, _ := rel.InsertDelta(t, 1) // placeholder count; fixed in recount
		m.pad(pred)
		m.sup[pred][row] = bits
		revived = append(revived, revivedTuple{pred, t, row, bits})
		st.Rederived++
	}
	for _, mk := range marked {
		rel := m.store[mk.pred]
		if rel.Alive(rel.LookupRow(mk.tuple)) {
			continue // already revived (duplicate mark entry)
		}
		if supCount(mk.bits) > 0 || m.countDerivations(mk.pred, mk.tuple, true, st) > 0 {
			revive(mk.pred, mk.tuple, mk.bits)
		}
	}
	rw := &Watermarks{Prev: map[string]int{}, Cur: map[string]int{}}
	for pred, rel := range m.store {
		rw.Prev[pred] = baseN[pred]
		rw.Cur[pred] = rel.NumRows()
	}
	for {
		st.Iterations++
		if m.opts.MaxIterations > 0 && st.Iterations > m.opts.MaxIterations {
			return fmt.Errorf("seminaive: rederivation exceeded %d iterations", m.opts.MaxIterations)
		}
		if err := m.interrupted(); err != nil {
			return err
		}
		nRevived := len(revived)
		for ri, r := range m.rules {
			rel := m.store[r.Head.Pred]
			buf := make(relation.Tuple, r.Head.Arity())
			for _, plan := range m.revivePlans[ri] {
				n := plan.Enumerate(m.store, rw, func(vals []ast.Value) bool {
					t := plan.HeadTupleInto(buf, vals)
					row := rel.LookupRow(t)
					if row >= 0 && !rel.Alive(row) {
						// Dead-but-canonical: it was marked this Apply (dead
						// rows from earlier Applies have no derivations over
						// the live extent, by the counting invariant).
						// Revive it with its recorded support bits.
						revive(r.Head.Pred, t.Clone(), markedBits[r.Head.Pred][t.Key()])
					}
					return true
				})
				st.Firings += n
			}
		}
		if len(revived) == nRevived {
			break
		}
		for pred, rel := range m.store {
			rw.Prev[pred] = rw.Cur[pred]
			rw.Cur[pred] = rel.NumRows()
		}
	}

	// Exact recount over the final extent: a revived tuple's count is its
	// base supports plus its surviving derivations.
	for _, rv := range revived {
		c := supCount(rv.bits) + m.countDerivations(rv.pred, rv.tuple, false, st)
		m.store[rv.pred].SetCount(rv.row, c)
	}
	st.Deleted += st.Overdeleted - st.Rederived
	return nil
}

// countDerivations counts the successful ground substitutions of rules with
// head pred deriving exactly t, over the current live extent. With
// earlyExit it stops at the first one (the existence check the rederivation
// seed needs). The firings are charged to st as maintenance work.
func (m *IVM) countDerivations(pred string, t relation.Tuple, earlyExit bool, st *MaintainStats) int32 {
	var total int32
	for _, r := range m.headRules[pred] {
		bind := map[string]ast.Value{}
		ok := true
		for i, arg := range r.Head.Args {
			if !arg.IsVar() {
				if arg.Value != t[i] {
					ok = false
					break
				}
				continue
			}
			if v, seen := bind[arg.VarName]; seen {
				if v != t[i] {
					ok = false
					break
				}
				continue
			}
			bind[arg.VarName] = t[i]
		}
		if !ok {
			continue
		}
		total += m.countBody(r.Body, 0, bind, earlyExit, st)
		if earlyExit && total > 0 {
			return total
		}
	}
	return total
}

// countBody recursively joins body[k:] under the bindings, counting
// satisfying ground substitutions over the live extent.
func (m *IVM) countBody(body []ast.Atom, k int, bind map[string]ast.Value, earlyExit bool, st *MaintainStats) int32 {
	if k == len(body) {
		st.Firings++
		return 1
	}
	a := body[k]
	rel, ok := m.store[a.Pred]
	if !ok || rel.Len() == 0 {
		return 0
	}
	var boundCols []int
	var boundVals []ast.Value
	for i, arg := range a.Args {
		if !arg.IsVar() {
			boundCols = append(boundCols, i)
			boundVals = append(boundVals, arg.Value)
		} else if v, seen := bind[arg.VarName]; seen {
			boundCols = append(boundCols, i)
			boundVals = append(boundVals, v)
		}
	}
	var total int32
	visit := func(row int) bool {
		if !rel.Alive(row) {
			return true
		}
		tuple := rel.Row(row)
		var fresh []string
		match := true
		for i, arg := range a.Args {
			if !arg.IsVar() {
				continue
			}
			if v, seen := bind[arg.VarName]; seen {
				if v != tuple[i] {
					match = false
					break
				}
				continue
			}
			bind[arg.VarName] = tuple[i]
			fresh = append(fresh, arg.VarName)
		}
		if match {
			total += m.countBody(body, k+1, bind, earlyExit, st)
		}
		for _, v := range fresh {
			delete(bind, v)
		}
		return !(earlyExit && total > 0)
	}
	if len(boundCols) == 0 {
		for row := 0; row < rel.NumRows(); row++ {
			if !visit(row) {
				break
			}
		}
	} else {
		rel.IndexOn(boundCols...).Lookup(boundVals, 0, rel.NumRows(), visit)
	}
	return total
}

// applyInserts adds EDB support for the batch and propagates the newly-live
// tuples through the rules, SCC by SCC, with the counting delta pass.
func (m *IVM) applyInserts(inserts map[string][]relation.Tuple, st *MaintainStats) error {
	baseN := map[string]int{}
	for pred, rel := range m.store {
		baseN[pred] = rel.NumRows()
	}
	changed := false
	for pred, ts := range inserts {
		for _, t := range ts {
			rel := m.store[pred]
			row := rel.LookupRow(t)
			alive := row >= 0 && rel.Alive(row)
			if m.addSupport(pred, t.Clone(), supEDB) && !alive {
				st.Inserted++
				changed = true
			}
		}
	}
	if !changed {
		return nil
	}

	for i := range m.sccs {
		// Delta positions: in-SCC atoms (they grow during this SCC's own
		// fixpoint) plus lower atoms whose predicates gained rows this
		// Apply. The SCC runs if any of its predicates already grew or any
		// of its rules reads a changed lower predicate — and then EVERY
		// rule with a delta position joins the rounds, because a rule fed
		// only by in-SCC deltas still fires off rows that sibling rules
		// append during the fixpoint.
		type compiled struct {
			head  string
			plans []*Plan
			lower map[string]bool // lower changed preds, emptied after round 1
		}
		active := false
		for p := range m.inSCC[i] {
			if m.store[p].NumRows() > baseN[p] {
				active = true
			}
		}
		type ruleDelta struct {
			r        ast.Rule
			deltaPos []int
			lower    map[string]bool
		}
		var rds []ruleDelta
		for _, r := range m.sccRules[i] {
			var deltaPos []int
			lower := map[string]bool{}
			for j, a := range r.Body {
				if m.inSCC[i][a.Pred] {
					deltaPos = append(deltaPos, j)
				} else if m.store[a.Pred] != nil && m.store[a.Pred].NumRows() > baseN[a.Pred] {
					deltaPos = append(deltaPos, j)
					lower[a.Pred] = true
				}
			}
			if len(deltaPos) == 0 {
				continue
			}
			if len(lower) > 0 {
				active = true
			}
			rds = append(rds, ruleDelta{r, deltaPos, lower})
		}
		if !active {
			continue
		}
		var cs []compiled
		for _, rd := range rds {
			cs = append(cs, compiled{
				head:  rd.r.Head.Pred,
				plans: DeltaVariantsWith(rd.r, rd.deltaPos, m.cfg),
				lower: rd.lower,
			})
		}
		if len(cs) == 0 {
			continue
		}
		w := &Watermarks{Prev: map[string]int{}, Cur: map[string]int{}}
		for p := range m.inSCC[i] {
			w.Prev[p] = baseN[p]
			w.Cur[p] = m.store[p].NumRows()
		}
		for _, c := range cs {
			for p := range c.lower {
				w.Prev[p] = baseN[p]
				w.Cur[p] = m.store[p].NumRows()
			}
		}
		round := 0
		for {
			round++
			st.Iterations++
			if m.opts.MaxIterations > 0 && round > m.opts.MaxIterations {
				return fmt.Errorf("seminaive: insert propagation exceeded %d iterations", m.opts.MaxIterations)
			}
			if err := m.interrupted(); err != nil {
				return err
			}
			fresh := 0
			for _, c := range cs {
				rel := m.store[c.head]
				buf := make(relation.Tuple, rel.Arity())
				for _, plan := range c.plans {
					n := plan.Enumerate(m.store, w, func(vals []ast.Value) bool {
						if _, f := rel.InsertDelta(plan.HeadTupleInto(buf, vals), 1); f {
							fresh++
							st.Inserted++
						}
						return true
					})
					st.Firings += n
				}
				m.pad(c.head)
			}
			if fresh == 0 {
				break
			}
			// Lower-predicate deltas are one-shot: after the first round
			// their windows close (Prev = Cur makes RangePrev cover the
			// whole extent and RangeDelta empty).
			for _, c := range cs {
				for p := range c.lower {
					w.Prev[p] = w.Cur[p]
				}
			}
			for p := range m.inSCC[i] {
				w.Prev[p] = w.Cur[p]
				w.Cur[p] = m.store[p].NumRows()
			}
		}
	}
	return nil
}

// Audit recomputes every live tuple's count from scratch — base supports
// plus a full goal-directed derivation count — and reports the first
// mismatch. It is the counting invariant's tripwire, meant for tests; cost
// is proportional to the whole model.
func (m *IVM) Audit() error {
	scratch := &MaintainStats{}
	for pred, rel := range m.store {
		for row := 0; row < rel.NumRows(); row++ {
			if !rel.Alive(row) {
				continue
			}
			t := rel.Row(row)
			want := supCount(m.sup[pred][row]) + m.countDerivations(pred, t, false, scratch)
			if got := rel.CountOf(row); got != want {
				return fmt.Errorf("seminaive: count invariant violated: %s%v has count %d, expected %d",
					pred, t, got, want)
			}
		}
	}
	return nil
}
