package seminaive

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
)

const ancestorRules = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`

const nonlinearAncestorRules = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`

// chainProgram builds the ancestor program over a par-chain of n edges
// (n+1 nodes): par(v0,v1), …, par(v(n-1),vn).
func chainProgram(t *testing.T, rules string, n int) *ast.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString(rules)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "par(v%d, v%d).\n", i, i+1)
	}
	prog, err := parser.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestAncestorChain(t *testing.T) {
	const n = 10
	prog := chainProgram(t, ancestorRules, n)
	store, stats, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n + 1) / 2
	if got := store["anc"].Len(); got != want {
		t.Errorf("|anc| = %d, want %d", got, want)
	}
	// On a chain every ancestor tuple has a unique derivation: firings equal
	// distinct tuples, with no rederivations.
	if stats.Firings != int64(want) {
		t.Errorf("firings = %d, want %d", stats.Firings, want)
	}
	if stats.New != int64(want) {
		t.Errorf("new = %d, want %d", stats.New, want)
	}
	// Spot-check one far pair and one non-pair.
	in := prog.Interner
	v0, _ := in.Lookup("v0")
	vn, _ := in.Lookup(fmt.Sprintf("v%d", n))
	if !store["anc"].Contains(relation.Tuple{v0, vn}) {
		t.Error("anc(v0, vn) missing")
	}
	if store["anc"].Contains(relation.Tuple{vn, v0}) {
		t.Error("anc(vn, v0) wrongly derived")
	}
}

func TestAncestorCycle(t *testing.T) {
	// A directed cycle of n nodes: closure is all n^2 pairs.
	const n = 7
	var b strings.Builder
	b.WriteString(ancestorRules)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "par(v%d, v%d).\n", i, (i+1)%n)
	}
	prog := parser.MustParse(b.String())
	store, _, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := store["anc"].Len(); got != n*n {
		t.Errorf("|anc| = %d, want %d", got, n*n)
	}
}

func TestEDBFromStore(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	a := prog.Interner.Intern("a")
	b := prog.Interner.Intern("b")
	c := prog.Interner.Intern("c")
	edb := relation.Store{}
	edb.InsertAll("par", [][]ast.Value{{a, b}, {b, c}})
	store, _, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store["anc"].Len() != 3 {
		t.Errorf("|anc| = %d, want 3", store["anc"].Len())
	}
	// The input store must be untouched.
	if _, ok := edb["anc"]; ok {
		t.Error("Eval mutated the input store")
	}
}

func TestNaiveMatchesSemiNaive(t *testing.T) {
	prog := chainProgram(t, ancestorRules, 8)
	s1, st1, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, st2, err := Eval(prog, relation.Store{}, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s1["anc"].Equal(s2["anc"]) {
		t.Error("naive and semi-naive disagree")
	}
	if st2.Firings < st1.Firings {
		t.Errorf("naive fired %d < semi-naive %d", st2.Firings, st1.Firings)
	}
}

func TestNonlinearMatchesLinear(t *testing.T) {
	lin := chainProgram(t, ancestorRules, 9)
	non := chainProgram(t, nonlinearAncestorRules, 9)
	s1, _, err := Eval(lin, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Eval(non, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s1["anc"].Equal(s2["anc"]) {
		t.Error("nonlinear anc disagrees with linear anc")
	}
}

func TestMutualRecursion(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
even(X) :- zero(X).
even(Y) :- succ(X, Y), odd(X).
odd(Y) :- succ(X, Y), even(X).
zero(n0).
`)
	const n = 10
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "succ(n%d, n%d).\n", i, i+1)
	}
	prog := parser.MustParse(b.String())
	store, _, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := store["even"].Len(); got != 6 { // n0 n2 n4 n6 n8 n10
		t.Errorf("|even| = %d, want 6", got)
	}
	if got := store["odd"].Len(); got != 5 {
		t.Errorf("|odd| = %d, want 5", got)
	}
	in := prog.Interner
	n4, _ := in.Lookup("n4")
	if !store["even"].Contains(relation.Tuple{n4}) {
		t.Error("even(n4) missing")
	}
	if store["odd"].Contains(relation.Tuple{n4}) {
		t.Error("odd(n4) wrongly derived")
	}
}

func TestSameGeneration(t *testing.T) {
	// Classic same-generation on a balanced binary tree of depth 3.
	var b strings.Builder
	b.WriteString(`
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`)
	// Nodes: level0 r; level1 a b; level2 c d e f.
	for _, e := range [][2]string{{"a", "r"}, {"b", "r"}, {"c", "a"}, {"d", "a"}, {"e", "b"}, {"f", "b"}} {
		fmt.Fprintf(&b, "up(%s, %s).\n", e[0], e[1])
		fmt.Fprintf(&b, "down(%s, %s).\n", e[1], e[0])
	}
	b.WriteString("flat(r, r).\n")
	prog := parser.MustParse(b.String())
	store, _, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := prog.Interner
	lv := func(s string) ast.Value { v, _ := in.Lookup(s); return v }
	// All 4 pairs at level 1 (a,b with themselves and each other), all 16 at
	// level 2, plus (r,r): 21 total.
	if got := store["sg"].Len(); got != 21 {
		t.Errorf("|sg| = %d, want 21", got)
	}
	if !store["sg"].Contains(relation.Tuple{lv("c"), lv("f")}) {
		t.Error("sg(c, f) missing")
	}
	if store["sg"].Contains(relation.Tuple{lv("c"), lv("r")}) {
		t.Error("sg(c, r) wrongly derived")
	}
}

func TestConstraintsFilterFirings(t *testing.T) {
	// q(X) :- p(X), h(X) = 0 with h = parity keeps only even constants.
	p := ast.NewProgram()
	h := &ast.HashFunc{Name: "h", Fn: func(v []ast.Value) int { return int(v[0]) % 2 }}
	rule := ast.NewRule(ast.NewAtom("q", ast.V("X")), ast.NewAtom("p", ast.V("X"))).
		WithConstraints(ast.NewHashConstraint(h, []string{"X"}, 0))
	p.AddRule(rule)
	edb := relation.Store{}
	edb.InsertAll("p", [][]ast.Value{{0}, {1}, {2}, {3}})
	store, stats, err := Eval(p, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store["q"].Len() != 2 {
		t.Errorf("|q| = %d, want 2", store["q"].Len())
	}
	if stats.Firings != 2 {
		t.Errorf("firings = %d, want 2 (constraint-rejected substitutions are not firings)", stats.Firings)
	}
}

func TestMaxIterations(t *testing.T) {
	prog := chainProgram(t, ancestorRules, 50)
	if _, _, err := Eval(prog, relation.Store{}, Options{MaxIterations: 3}); err == nil {
		t.Error("MaxIterations not enforced")
	}
	if _, _, err := Eval(prog, relation.Store{}, Options{Naive: true, MaxIterations: 3}); err == nil {
		t.Error("MaxIterations not enforced for naive")
	}
}

func TestArityMismatchRejected(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	edb := relation.Store{"par": relation.New(3)}
	if _, _, err := Eval(prog, edb, Options{}); err == nil {
		t.Error("arity mismatch between store and program not rejected")
	}
}

func TestConstantsInRuleBody(t *testing.T) {
	prog := parser.MustParse(`
reach(Y) :- edge(a, Y).
reach(Y) :- reach(X), edge(X, Y).
edge(a, b). edge(b, c). edge(d, e).
`)
	store, _, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store["reach"].Len() != 2 { // b, c — not e
		t.Errorf("|reach| = %d, want 2: %v", store["reach"].Len(), store["reach"])
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	prog := parser.MustParse(`
loop(X) :- edge(X, X).
edge(a, a). edge(a, b). edge(b, b).
`)
	store, _, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store["loop"].Len() != 2 {
		t.Errorf("|loop| = %d, want 2", store["loop"].Len())
	}
}

func TestEmptyEDB(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	store, stats, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store["anc"].Len() != 0 || stats.Firings != 0 {
		t.Errorf("empty EDB produced |anc|=%d firings=%d", store["anc"].Len(), stats.Firings)
	}
}

// randomGraphProgram returns the ancestor program over a random digraph.
func randomGraphProgram(rules string, nodes, edges int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(rules)
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&b, "par(v%d, v%d).\n", e[0], e[1])
	}
	return parser.MustParse(b.String())
}

// TestRandomGraphsNaiveOracle cross-checks semi-naive against naive and
// against a direct Warshall-style closure on random graphs.
func TestRandomGraphsNaiveOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := randomGraphProgram(ancestorRules, 12, 20, seed)
		sn, snStats, err := Eval(prog, relation.Store{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		nv, nvStats, err := Eval(prog, relation.Store{}, Options{Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sn["anc"].Equal(nv["anc"]) {
			t.Fatalf("seed %d: naive and semi-naive disagree", seed)
		}
		if snStats.Firings > nvStats.Firings {
			t.Errorf("seed %d: semi-naive fired more (%d) than naive (%d)", seed, snStats.Firings, nvStats.Firings)
		}
		// Oracle: reflexive-free transitive closure via repeated squaring on
		// a boolean matrix over the par facts.
		_, facts := prog.FactTuples()
		closure := closureOf(facts["par"])
		if int(int64(len(closure))) != sn["anc"].Len() {
			t.Fatalf("seed %d: closure oracle %d vs anc %d", seed, len(closure), sn["anc"].Len())
		}
		for pair := range closure {
			if !sn["anc"].Contains(relation.Tuple{pair[0], pair[1]}) {
				t.Fatalf("seed %d: missing %v", seed, pair)
			}
		}
	}
}

// closureOf computes the transitive closure of edge tuples with a simple
// worklist — an independent oracle implementation.
func closureOf(edges [][]ast.Value) map[[2]ast.Value]bool {
	adj := map[ast.Value][]ast.Value{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	out := map[[2]ast.Value]bool{}
	for src := range adj {
		seen := map[ast.Value]bool{}
		stack := append([]ast.Value(nil), adj[src]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			out[[2]ast.Value{src, v}] = true
			stack = append(stack, adj[v]...)
		}
	}
	return out
}

func TestDeltaVariantsShape(t *testing.T) {
	prog := parser.MustParse(nonlinearAncestorRules)
	rule := prog.Rules[1]
	plans := DeltaVariants(rule, []int{0, 1})
	if len(plans) != 2 {
		t.Fatalf("variants = %d, want 2", len(plans))
	}
	// Variant 0: atom0=Δ, atom1=Full. Variant 1: atom0=Prev, atom1=Δ.
	if plans[0].Ranges[0] != RangeDelta || plans[0].Ranges[1] != RangeFull {
		t.Errorf("variant 0 ranges = %v", plans[0].Ranges)
	}
	if plans[1].Ranges[0] != RangePrev || plans[1].Ranges[1] != RangeDelta {
		t.Errorf("variant 1 ranges = %v", plans[1].Ranges)
	}
}

func TestPlanOrderStartsAtDelta(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	rule := prog.Rules[1] // anc(X,Y) :- par(X,Z), anc(Z,Y).
	plan := Compile(rule, []RangeKind{RangeFull, RangeDelta})
	if plan.Order[0] != 1 {
		t.Errorf("join order %v does not start at the delta atom", plan.Order)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	prog := parser.MustParse("q(X) :- p(X).\np(a). p(b). p(c).")
	rules, facts := prog.FactTuples()
	store := relation.Store{}
	for pred, ts := range facts {
		store.InsertAll(pred, ts)
	}
	plan := Compile(rules[0], nil)
	count := 0
	fired := plan.Enumerate(store, nil, func([]ast.Value) bool {
		count++
		return count < 2
	})
	if count != 2 || fired != 2 {
		t.Errorf("early stop: count=%d fired=%d, want 2/2", count, fired)
	}
}

func BenchmarkChainSemiNaive(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(ancestorRules)
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "par(v%d, v%d).\n", i, i+1)
	}
	prog := parser.MustParse(sb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Eval(prog, relation.Store{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlanSlotAccessors(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	plan := Compile(prog.Rules[1], nil) // anc(X,Y) :- par(X,Z), anc(Z,Y).
	if plan.Slots() != 3 {
		t.Errorf("Slots = %d, want 3", plan.Slots())
	}
	if s, ok := plan.SlotOf("Z"); !ok || s < 0 || s >= 3 {
		t.Errorf("SlotOf(Z) = %d, %v", s, ok)
	}
	if _, ok := plan.SlotOf("NOPE"); ok {
		t.Error("SlotOf reported an unknown variable")
	}
	if plan.HeadArity() != 2 {
		t.Errorf("HeadArity = %d", plan.HeadArity())
	}
}

func TestEnumerateSlotValues(t *testing.T) {
	prog := parser.MustParse("q(Y, X) :- p(X, Y).\np(a, b).")
	rules, facts := prog.FactTuples()
	store := relation.Store{}
	for pred, ts := range facts {
		store.InsertAll(pred, ts)
	}
	plan := Compile(rules[0], nil)
	sx, _ := plan.SlotOf("X")
	sy, _ := plan.SlotOf("Y")
	va, _ := prog.Interner.Lookup("a")
	vb, _ := prog.Interner.Lookup("b")
	n := plan.Enumerate(store, nil, func(vals []ast.Value) bool {
		if vals[sx] != va || vals[sy] != vb {
			t.Errorf("slot values: X=%d Y=%d", vals[sx], vals[sy])
		}
		head := plan.HeadTuple(vals)
		if head[0] != vb || head[1] != va {
			t.Errorf("head tuple %v, want (b, a)", head)
		}
		return true
	})
	if n != 1 {
		t.Errorf("fired %d, want 1", n)
	}
}

// TestThreeRecursiveAtoms exercises the triple-delta decomposition: the
// ternary transitive rule anc(X,Y) :- anc(X,A), anc(A,B), anc(B,Y) combined
// with the base rule must still produce the closure with exact counting.
func TestThreeRecursiveAtoms(t *testing.T) {
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, A), anc(A, B), anc(B, Y).
`
	prog := randomGraphProgram(src, 9, 18, 5)
	store, stats, err := Eval(prog, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lin := randomGraphProgram(ancestorRules, 9, 18, 5)
	want, _, err := Eval(lin, relation.Store{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !want["anc"].Equal(store["anc"]) {
		t.Fatal("ternary recursion computed a different closure")
	}
	// Exactness: firings equal the number of distinct successful
	// substitutions over the final store.
	rules, _ := prog.FactTuples()
	var oracle int64
	for _, r := range rules {
		oracle += Compile(r, nil).Enumerate(store, nil, func([]ast.Value) bool { return true })
	}
	if stats.Firings != oracle {
		t.Errorf("firings %d != distinct substitutions %d", stats.Firings, oracle)
	}
}
