package seminaive

import (
	"fmt"
	"math/rand"
	"testing"

	"parlog/internal/ast"
	"parlog/internal/parser"
	"parlog/internal/relation"
)

// edges builds an EDB store holding pred over the given (from,to) pairs,
// interning node names vN through prog's interner.
func edges(prog *ast.Program, pred string, pairs [][2]int) relation.Store {
	rel := relation.New(2)
	for _, p := range pairs {
		rel.Insert(relation.Tuple{
			prog.Interner.Intern(fmt.Sprintf("v%d", p[0])),
			prog.Interner.Intern(fmt.Sprintf("v%d", p[1])),
		})
	}
	return relation.Store{pred: rel}
}

func pair(prog *ast.Program, a, b int) relation.Tuple {
	return relation.Tuple{
		prog.Interner.Intern(fmt.Sprintf("v%d", a)),
		prog.Interner.Intern(fmt.Sprintf("v%d", b)),
	}
}

// checkAgainstEval asserts the IVM's live model equals a from-scratch Eval
// over the IVM's current EDB, and that the counting invariant holds.
func checkAgainstEval(t *testing.T, m *IVM, prog *ast.Program, edb relation.Store) {
	t.Helper()
	want, _, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatalf("from-scratch Eval: %v", err)
	}
	got := m.SnapshotStore()
	for pred, w := range want {
		g, ok := got[pred]
		if !ok {
			t.Fatalf("maintained store lost predicate %s", pred)
		}
		if !g.Equal(w) {
			t.Fatalf("maintained %s diverged: %d live tuples, want %d",
				pred, g.Len(), w.Len())
		}
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestIVMMaterializeMatchesEval(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	edb := edges(prog, "par", pairs)
	m, stats, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Firings == 0 {
		t.Error("materialization reported no firings")
	}
	if got := m.Store()["anc"].Len(); got != 10 {
		t.Errorf("|anc| = %d, want 10", got)
	}
	checkAgainstEval(t, m, prog, edb)
}

func TestIVMInsertPropagates(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	edb := edges(prog, "par", [][2]int{{0, 1}, {2, 3}})
	m, _, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Bridge the two chains: anc must gain the cross pairs.
	st, err := m.Apply(nil, map[string][]relation.Tuple{"par": {pair(prog, 1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted == 0 || st.Firings == 0 {
		t.Errorf("stats = %+v, expected insertions and firings", st)
	}
	if !m.Store()["anc"].Contains(pair(prog, 0, 3)) {
		t.Error("anc(v0,v3) not derived after bridging insert")
	}
	edb.Get("par", 2).Insert(pair(prog, 1, 2))
	checkAgainstEval(t, m, prog, edb)

	// Duplicate insert is a no-op.
	st, err = m.Apply(nil, map[string][]relation.Tuple{"par": {pair(prog, 1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted != 0 || st.Firings != 0 {
		t.Errorf("duplicate insert did work: %+v", st)
	}
}

func TestIVMDeleteCascades(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	edb := edges(prog, "par", pairs)
	m, _, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cutting the middle edge kills every ancestor pair that crossed it.
	st, err := m.Apply(map[string][]relation.Tuple{"par": {pair(prog, 1, 2)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Overdeleted == 0 {
		t.Errorf("stats = %+v, expected overdeletions", st)
	}
	if m.Store()["anc"].Contains(pair(prog, 0, 3)) {
		t.Error("anc(v0,v3) survived the cut")
	}
	if !m.Store()["anc"].Contains(pair(prog, 0, 1)) || !m.Store()["anc"].Contains(pair(prog, 2, 4)) {
		t.Error("ancestor pairs on the surviving sides were lost")
	}
	edb = edges(prog, "par", [][2]int{{0, 1}, {2, 3}, {3, 4}})
	checkAgainstEval(t, m, prog, edb)
}

func TestIVMDeleteRederives(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	// Diamond: two parallel paths v0→v3; deleting one leaves anc(v0,v3).
	pairs := [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}}
	edb := edges(prog, "par", pairs)
	m, _, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Apply(map[string][]relation.Tuple{"par": {pair(prog, 1, 3)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Store()["anc"].Contains(pair(prog, 0, 3)) {
		t.Error("anc(v0,v3) lost despite the surviving path")
	}
	if st.Rederived == 0 {
		t.Errorf("stats = %+v, expected a rederivation", st)
	}
	edb = edges(prog, "par", [][2]int{{0, 1}, {0, 2}, {2, 3}})
	checkAgainstEval(t, m, prog, edb)

	// Deleting an absent tuple is a no-op.
	st, err = m.Apply(map[string][]relation.Tuple{"par": {pair(prog, 7, 8)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 0 || st.Overdeleted != 0 {
		t.Errorf("absent delete did work: %+v", st)
	}
}

func TestIVMDeleteThenReinsert(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	edb := edges(prog, "par", pairs)
	m, _, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One batch that removes and restores the same edge: net no-op model.
	_, err = m.Apply(
		map[string][]relation.Tuple{"par": {pair(prog, 1, 2)}},
		map[string][]relation.Tuple{"par": {pair(prog, 1, 2)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstEval(t, m, prog, edb)
}

func TestIVMFactsArePermanent(t *testing.T) {
	// par(v0,v1) is a program fact AND an EDB tuple; deleting the EDB copy
	// must not remove it from the model.
	prog := parser.MustParse(ancestorRules + "par(v0, v1).\n")
	edb := edges(prog, "par", [][2]int{{0, 1}, {1, 2}})
	m, _, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(map[string][]relation.Tuple{"par": {pair(prog, 0, 1)}}, nil); err != nil {
		t.Fatal(err)
	}
	if !m.Store()["par"].Contains(pair(prog, 0, 1)) {
		t.Error("program fact was deleted")
	}
	if !m.Store()["anc"].Contains(pair(prog, 0, 2)) {
		t.Error("derivation through the program fact was lost")
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestIVMRejectsUnsupported(t *testing.T) {
	if _, _, err := NewIVM(parser.MustParse(ancestorRules), relation.Store{}, Options{Naive: true}); err == nil {
		t.Error("Naive accepted")
	}
	neg := parser.MustParse("p(X) :- q(X), !r(X).\nq(a).\n")
	if _, _, err := NewIVM(neg, relation.Store{}, Options{}); err == nil {
		t.Error("negation accepted")
	}
	prog := parser.MustParse(ancestorRules)
	m, _, err := NewIVM(prog, edges(prog, "par", [][2]int{{0, 1}}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(nil, map[string][]relation.Tuple{"anc": {pair(prog, 5, 6)}}); err == nil {
		t.Error("insert into derived predicate accepted")
	}
	if _, err := m.Apply(map[string][]relation.Tuple{"anc": {pair(prog, 0, 1)}}, nil); err == nil {
		t.Error("delete from derived predicate accepted")
	}
	if _, err := m.Apply(nil, map[string][]relation.Tuple{"par": {{1}}}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestIVMSnapshotIsolation(t *testing.T) {
	prog := parser.MustParse(ancestorRules)
	edb := edges(prog, "par", [][2]int{{0, 1}, {1, 2}})
	m, _, err := NewIVM(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.SnapshotStore()
	before := snap["anc"].Len()
	if _, err := m.Apply(nil, map[string][]relation.Tuple{"par": {pair(prog, 2, 3)}}); err != nil {
		t.Fatal(err)
	}
	if snap["anc"].Len() != before {
		t.Error("snapshot observed a later Apply")
	}
	if snap["anc"].Contains(pair(prog, 0, 3)) {
		t.Error("snapshot contains post-snapshot derivation")
	}
	if !m.Store()["anc"].Contains(pair(prog, 0, 3)) {
		t.Error("live store missing post-Apply derivation")
	}
}

// TestIVMRandomBatches drives randomized insert/delete batches over a random
// graph and checks the maintained model against from-scratch evaluation
// after every batch — the unit-level twin of the root differential test.
func TestIVMRandomBatches(t *testing.T) {
	const nodes = 12
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := parser.MustParse(nonlinearAncestorRules)
		present := map[[2]int]bool{}
		var pairs [][2]int
		for i := 0; i < 20; i++ {
			e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
			if !present[e] {
				present[e] = true
				pairs = append(pairs, e)
			}
		}
		edb := edges(prog, "par", pairs)
		m, _, err := NewIVM(prog, edb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 4; batch++ {
			ins := map[string][]relation.Tuple{}
			del := map[string][]relation.Tuple{}
			for i := 0; i < 4; i++ {
				e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
				if present[e] && rng.Intn(2) == 0 {
					present[e] = false
					del["par"] = append(del["par"], pair(prog, e[0], e[1]))
				} else if !present[e] {
					present[e] = true
					ins["par"] = append(ins["par"], pair(prog, e[0], e[1]))
				}
			}
			if _, err := m.Apply(del, ins); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			var cur [][2]int
			for e, ok := range present {
				if ok {
					cur = append(cur, e)
				}
			}
			checkAgainstEval(t, m, prog, edges(prog, "par", cur))
		}
	}
}
