package seminaive

import (
	"context"
	"fmt"
	"time"

	"parlog/internal/analysis"
	"parlog/internal/ast"
	"parlog/internal/obs"
	"parlog/internal/relation"
)

// Options configures sequential evaluation.
type Options struct {
	// Naive switches to naive (full re-evaluation) iteration — the ablation
	// baseline against which semi-naive's non-redundancy is measured.
	Naive bool
	// MaxIterations aborts runaway evaluations; 0 means unlimited.
	MaxIterations int
	// Ctx, when non-nil, cancels the evaluation between iterations.
	Ctx context.Context
	// Sink, when non-nil, receives the evaluation's event stream; the
	// sequential engine reports as processor 0.
	Sink obs.EventSink
	// Planner selects the join-order planner for compiled rule plans;
	// PlanBoundness (the zero value) is the legacy order that golden traces
	// pin. PlanGreedy additionally consults relation cardinalities at
	// compile time.
	Planner PlanMode
	// OnPlan, when non-nil, observes every compiled plan (one call per
	// delta variant) — the hook Result.Explain() is built on.
	OnPlan func(*Plan)
	// Profile arms runtime counters on every compiled plan and collects
	// them into Stats.Profile — the analyze half of explain-analyze. Off
	// (the default), plans stay on the zero-overhead path.
	Profile bool
}

// planConfig builds the compile-time configuration, sampling relation
// cardinalities from store. Lower-SCC cardinalities are exact by the time a
// rule compiles, because SCCs evaluate in topological order.
func (o Options) planConfig(store relation.Store) PlanConfig {
	return PlanConfig{Mode: o.Planner, Card: func(pred string) int {
		if rel, ok := store[pred]; ok {
			return rel.Len()
		}
		return 0
	}}
}

// observePlan reports a freshly compiled plan to the OnPlan hook and the
// event stream.
func (o Options) observePlan(p *Plan) *Plan {
	if o.OnPlan != nil {
		o.OnPlan(p)
	}
	obs.PlanCompiled(o.Sink, 0, p.Rule.Head.Pred, p.Moved(), p.Pushdowns())
	return p
}

// interrupted reports a pending cancellation of opts.Ctx.
func (o Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// Stats reports what an evaluation did. Firings is the number of successful
// ground substitutions of rules (after constraints) — the quantity
// Definition 1 and Theorems 2/6 compare. Firings minus New is the number of
// rederivations of already-known tuples.
type Stats struct {
	Iterations int
	Firings    int64
	New        int64
	// FiringsByPred counts successful substitutions per head predicate.
	FiringsByPred map[string]int64
	// Profile holds the runtime query profile when Options.Profile was
	// set; nil otherwise.
	Profile *Profile
}

func newStats() *Stats { return &Stats{FiringsByPred: make(map[string]int64)} }

// add merges other into s.
func (s *Stats) add(other *Stats) {
	s.Iterations += other.Iterations
	s.Firings += other.Firings
	s.New += other.New
	for k, v := range other.FiringsByPred {
		s.FiringsByPred[k] += v
	}
}

// Eval computes the least model of prog over the given EDB and returns the
// complete store (input relations plus all derived relations). The input
// store is not modified. Facts embedded in prog are added to the store
// first. Rules may carry constraints (as produced by the rewriting schemes);
// a substitution rejected by a constraint is not a firing.
func Eval(prog *ast.Program, edb relation.Store, opts Options) (relation.Store, *Stats, error) {
	rules, facts := prog.FactTuples()
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, nil, err
	}
	if analysis.HasNegation(prog) {
		if _, err := analysis.Stratify(prog); err != nil {
			return nil, nil, err
		}
		if opts.Naive {
			return nil, nil, fmt.Errorf("seminaive: naive iteration does not support negation; use the default stratified semi-naive mode")
		}
	}
	arities := prog.Arities()

	store := edb.Clone()
	for pred, r := range store {
		if want, ok := arities[pred]; ok && r.Arity() != want {
			return nil, nil, fmt.Errorf("seminaive: EDB relation %s has arity %d, program uses %d", pred, r.Arity(), want)
		}
	}
	for pred, tuples := range facts {
		store.InsertAll(pred, tuples)
	}
	// Materialize every predicate so lookups never miss.
	for pred, ar := range arities {
		store.Get(pred, ar)
	}

	if opts.Sink != nil {
		opts.Sink.RunStart("seminaive", []int{0})
		opts.Sink.WorkerBusy(0)
		start := time.Now()
		defer func() {
			opts.Sink.WorkerIdle(0)
			opts.Sink.RunEnd(time.Since(start))
		}()
	}

	stats := newStats()
	var evalStart time.Time
	if opts.Profile {
		engine := "seminaive"
		if opts.Naive {
			engine = "naive"
		}
		stats.Profile = &Profile{Engine: engine}
		evalStart = time.Now()
	}
	if opts.Naive {
		if err := evalNaive(prog, rules, store, stats, opts); err != nil {
			return nil, nil, err
		}
		if stats.Profile != nil {
			stats.Profile.WallNs = time.Since(evalStart).Nanoseconds()
		}
		return store, stats, nil
	}

	g := analysis.Dependencies(prog)
	comp := make(map[string]int)
	sccs := g.SCCs()
	for i, scc := range sccs {
		for _, p := range scc {
			comp[p] = i
		}
	}
	for i, scc := range sccs {
		inSCC := make(map[string]bool, len(scc))
		for _, p := range scc {
			inSCC[p] = true
		}
		var nonRec, rec []ast.Rule
		for _, r := range rules {
			if comp[r.Head.Pred] != i {
				continue
			}
			recursive := false
			for _, a := range r.Body {
				if inSCC[a.Pred] {
					recursive = true
					break
				}
			}
			if recursive {
				rec = append(rec, r)
			} else {
				nonRec = append(nonRec, r)
			}
		}
		if len(nonRec) == 0 && len(rec) == 0 {
			continue
		}
		s, err := evalSCC(prog, nonRec, rec, inSCC, store, opts, stats.Profile)
		if err != nil {
			return nil, nil, err
		}
		stats.add(s)
	}
	if stats.Profile != nil {
		stats.Profile.WallNs = time.Since(evalStart).Nanoseconds()
	}
	return store, stats, nil
}

// evalSCC runs the semi-naive loop for one strongly connected component.
// prof, when non-nil, is the evaluation-wide profile the SCC's rule
// counters fold into.
func evalSCC(prog *ast.Program, nonRec, rec []ast.Rule, inSCC map[string]bool, store relation.Store, opts Options, prof *Profile) (*Stats, error) {
	stats := newStats()

	// One-shot rules: their bodies read only completed components, so a
	// single pass suffices. The sink sees this as iteration 0.
	if len(nonRec) > 0 && opts.Sink != nil {
		opts.Sink.IterationStart(0, 0)
	}
	newBeforeInit := stats.New
	cfg := opts.planConfig(store)
	for _, r := range nonRec {
		plan := opts.observePlan(CompileWith(r, nil, cfg))
		head := r.Head.Pred
		rel := store.Get(head, r.Head.Arity())
		newBefore := stats.New
		var rp *RuleProfile
		var t0 time.Time
		if prof != nil {
			rp = prof.Rule(ProfileKey(prog, r), head)
			plan.EnableProfile()
			t0 = time.Now()
		}
		n := plan.Enumerate(store, nil, func(vals []ast.Value) bool {
			if rel.Insert(plan.HeadTuple(vals)) {
				stats.New++
			}
			return true
		})
		stats.Firings += n
		stats.FiringsByPred[head] += n
		if rp != nil {
			fresh := stats.New - newBefore
			rp.Firings += n
			rp.New += fresh
			rp.Dup += n - fresh
			rp.Iterations++
			rp.WallNs += time.Since(t0).Nanoseconds()
			plan.ProfileInto(rp)
		}
		if opts.Sink != nil {
			opts.Sink.RuleFirings(0, head, n, n-(stats.New-newBefore))
		}
	}
	if len(nonRec) > 0 && opts.Sink != nil {
		opts.Sink.IterationEnd(0, 0, int(stats.New-newBeforeInit))
	}
	if len(rec) == 0 {
		return stats, nil
	}

	// Compile the exact delta decomposition of every recursive rule.
	type compiled struct {
		plans []*Plan
		head  string
		arity int
		rp    *RuleProfile
	}
	var cs []compiled
	for _, r := range rec {
		var recAtoms []int
		for j, a := range r.Body {
			if inSCC[a.Pred] {
				recAtoms = append(recAtoms, j)
			}
		}
		plans := DeltaVariantsWith(r, recAtoms, cfg)
		for _, pl := range plans {
			opts.observePlan(pl)
		}
		c := compiled{
			plans: plans,
			head:  r.Head.Pred,
			arity: r.Head.Arity(),
		}
		if prof != nil {
			c.rp = prof.Rule(ProfileKey(prog, r), c.head)
			for _, pl := range plans {
				pl.EnableProfile()
			}
		}
		cs = append(cs, c)
	}

	// Watermarks: everything present now is the initial delta.
	w := &Watermarks{Prev: map[string]int{}, Cur: map[string]int{}}
	for p := range inSCC {
		w.Prev[p] = 0
		if rel, ok := store[p]; ok {
			w.Cur[p] = rel.Len()
		}
	}

	// Derived tuples are inserted straight into the arena as they are
	// enumerated — no staging copies. This is sound because every plan's
	// bounds come from w, whose Cur entries were taken at iteration start: a
	// tuple inserted mid-iteration lands at a row id >= Cur and is invisible
	// to every RangePrev/RangeDelta/RangeFull scan of this iteration,
	// exactly as if it had been staged. Insert's return value replaces the
	// old Contains+stagedSeen dedup: it is false for pre-existing and
	// same-iteration duplicates alike.
	scratch := make(relation.Tuple, 8)
	for {
		stats.Iterations++
		if opts.MaxIterations > 0 && stats.Iterations > opts.MaxIterations {
			return nil, fmt.Errorf("seminaive: exceeded %d iterations", opts.MaxIterations)
		}
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		if opts.Sink != nil {
			opts.Sink.IterationStart(0, stats.Iterations)
		}
		delta := 0
		for _, c := range cs {
			rel := store.Get(c.head, c.arity)
			if cap(scratch) < c.arity {
				scratch = make(relation.Tuple, c.arity)
			}
			buf := scratch[:c.arity]
			var ruleFirings, fresh int64
			var t0 time.Time
			if c.rp != nil {
				t0 = time.Now()
			}
			for _, plan := range c.plans {
				n := plan.Enumerate(store, w, func(vals []ast.Value) bool {
					if rel.Insert(plan.HeadTupleInto(buf, vals)) {
						fresh++
					}
					return true
				})
				ruleFirings += n
			}
			if c.rp != nil {
				c.rp.Firings += ruleFirings
				c.rp.New += fresh
				c.rp.Dup += ruleFirings - fresh
				c.rp.Iterations++
				c.rp.WallNs += time.Since(t0).Nanoseconds()
			}
			stats.Firings += ruleFirings
			stats.FiringsByPred[c.head] += ruleFirings
			stats.New += fresh
			delta += int(fresh)
			if opts.Sink != nil {
				opts.Sink.RuleFirings(0, c.head, ruleFirings, ruleFirings-fresh)
			}
		}
		if opts.Sink != nil {
			opts.Sink.IterationEnd(0, stats.Iterations, delta)
		}
		if delta == 0 {
			for _, c := range cs {
				if c.rp == nil {
					continue
				}
				for _, plan := range c.plans {
					plan.ProfileInto(c.rp)
				}
			}
			return stats, nil
		}
		// Advance the watermarks: this iteration's inserts become the next
		// delta. Cur was rel.Len() at iteration start, so the new window
		// [Prev, Cur) covers exactly the fresh rows.
		for p := range inSCC {
			if rel, ok := store[p]; ok {
				w.Prev[p] = w.Cur[p]
				w.Cur[p] = rel.Len()
			}
		}
	}
}

// evalNaive iterates every rule over the full store until fixpoint.
func evalNaive(prog *ast.Program, rules []ast.Rule, store relation.Store, stats *Stats, opts Options) error {
	plans := make([]*Plan, len(rules))
	cfg := opts.planConfig(store)
	rps := make([]*RuleProfile, len(rules))
	for i, r := range rules {
		plans[i] = opts.observePlan(CompileWith(r, nil, cfg))
		if stats.Profile != nil {
			rps[i] = stats.Profile.Rule(ProfileKey(prog, r), r.Head.Pred)
			plans[i].EnableProfile()
		}
	}
	for {
		stats.Iterations++
		if opts.MaxIterations > 0 && stats.Iterations > opts.MaxIterations {
			return fmt.Errorf("seminaive: exceeded %d iterations (naive)", opts.MaxIterations)
		}
		if err := opts.interrupted(); err != nil {
			return err
		}
		if opts.Sink != nil {
			opts.Sink.IterationStart(0, stats.Iterations)
		}
		newBefore := stats.New
		changed := false
		for i, plan := range plans {
			head := rules[i].Head
			rel := store.Get(head.Pred, head.Arity())
			scratch := make(relation.Tuple, head.Arity())
			var toInsert []relation.Tuple
			var t0 time.Time
			if rps[i] != nil {
				t0 = time.Now()
			}
			n := plan.Enumerate(store, nil, func(vals []ast.Value) bool {
				t := plan.HeadTupleInto(scratch, vals)
				if !rel.Contains(t) {
					toInsert = append(toInsert, t.Clone())
				}
				return true
			})
			stats.Firings += n
			stats.FiringsByPred[head.Pred] += n
			inserted := int64(0)
			for _, t := range toInsert {
				if rel.Insert(t) {
					stats.New++
					inserted++
					changed = true
				}
			}
			if rp := rps[i]; rp != nil {
				rp.Firings += n
				rp.New += inserted
				rp.Dup += n - inserted
				rp.Iterations++
				rp.WallNs += time.Since(t0).Nanoseconds()
			}
			if opts.Sink != nil {
				opts.Sink.RuleFirings(0, head.Pred, n, n-inserted)
			}
		}
		if opts.Sink != nil {
			opts.Sink.IterationEnd(0, stats.Iterations, int(stats.New-newBefore))
		}
		if !changed {
			for i, plan := range plans {
				if rps[i] != nil {
					plan.ProfileInto(rps[i])
				}
			}
			return nil
		}
	}
}
