// Package logx is the thin structured-logging layer the CLIs share: a
// log/slog logger over stderr (human-oriented text by default, one JSON
// object per line behind the -log-json flag) plus an HTTP access-log
// middleware recording method, path, status, duration and response bytes.
package logx

import (
	"io"
	"log/slog"
	"net/http"
	"time"
)

// New builds a logger writing to w: slog's text handler by default, the
// JSON handler when jsonOut is set. Log lines keep their message text
// greppable under both handlers (msg=... vs "msg":"..."), which the CI
// smoke checks rely on.
func New(w io.Writer, jsonOut bool) *slog.Logger {
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// AccessLog wraps next with one request-log line per call: method, path,
// status, wall duration and response bytes. Handlers that never write get
// status 200, matching net/http's implicit reply.
func AccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		log.Info("http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(begin)),
			slog.Int64("bytes", sw.bytes),
		)
	})
}
