package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format ("Trace Event
// Format", the JSON chrome://tracing and Perfetto load). Only the fields
// the exporter uses are declared.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders a recorded event stream as Chrome trace_event
// JSON, loadable in chrome://tracing or ui.perfetto.dev. Each processor
// becomes a thread row (pid 0); busy→idle transitions and iteration
// brackets become complete ("X") slices; span_send/span_recv pairs become
// flow arrows ("s"/"f") keyed by the wire span id, so a batch's hop —
// including its replay after a worker death — draws as one causal chain
// across rows; deaths, replays, checkpoints and network violations appear
// as instant markers.
func WriteChromeTrace(w io.Writer, events []Event) error {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	var out []chromeEvent

	// Open interval starts, per processor (and per bucket for migrations).
	busyStart := map[int]int64{}
	iterStart := map[int]Event{}
	migStart := map[int]Event{}
	var lastNs int64
	for _, e := range events {
		if e.TNs > lastNs {
			lastNs = e.TNs
		}
	}

	closeBusy := func(proc int, endNs int64) {
		if start, ok := busyStart[proc]; ok {
			delete(busyStart, proc)
			out = append(out, chromeEvent{
				Name: "busy", Cat: "worker", Phase: "X",
				TS: us(start), Dur: us(endNs - start), PID: 0, TID: proc,
			})
		}
	}

	for _, e := range events {
		switch e.Kind {
		case KindBusy:
			// A repeated busy closes the previous slice and opens a new one.
			closeBusy(e.Proc, e.TNs)
			busyStart[e.Proc] = e.TNs
		case KindIdle:
			closeBusy(e.Proc, e.TNs)
		case KindIterStart:
			iterStart[e.Proc] = e
		case KindIterEnd:
			if s, ok := iterStart[e.Proc]; ok {
				delete(iterStart, e.Proc)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("iter %d", e.Iter), Cat: "iteration", Phase: "X",
					TS: us(s.TNs), Dur: us(e.TNs - s.TNs), PID: 0, TID: e.Proc,
					Args: map[string]any{"delta": e.N},
				})
			}
		case KindSpanSend:
			id := fmt.Sprintf("%x", e.Span)
			args := map[string]any{"pred": e.Pred, "tuples": e.N, "to": e.Peer}
			if e.Parent != 0 {
				args["parent"] = fmt.Sprintf("%x", e.Parent)
			}
			out = append(out,
				chromeEvent{Name: "batch", Cat: "span", Phase: "s", TS: us(e.TNs), PID: 0, TID: e.Proc, ID: id, Args: args},
				chromeEvent{Name: "send " + e.Pred, Cat: "span", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Proc, Args: args})
		case KindSpanRecv:
			id := fmt.Sprintf("%x", e.Span)
			args := map[string]any{"pred": e.Pred, "tuples": e.N, "from": e.Peer}
			out = append(out,
				chromeEvent{Name: "batch", Cat: "span", Phase: "f", BP: "e", TS: us(e.TNs), PID: 0, TID: e.Proc, ID: id, Args: args},
				chromeEvent{Name: "recv " + e.Pred, Cat: "span", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Proc, Args: args})
		case KindSpanReplay:
			// Replays re-send the original span id to the bucket's new
			// owner: a second flow step on the same id.
			id := fmt.Sprintf("%x", e.Span)
			out = append(out, chromeEvent{
				Name: "batch", Cat: "span", Phase: "s", TS: us(e.TNs), PID: 0, TID: e.Peer, ID: id,
				Args: map[string]any{"replay": true, "bucket": e.Bucket},
			})
		case KindMigrationStart:
			migStart[e.Bucket] = e
		case KindMigrationEnd:
			// Render the migration as a complete slice on the receiving
			// worker's row — where the adopted bucket now lives.
			if s, ok := migStart[e.Bucket]; ok {
				delete(migStart, e.Bucket)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("migrate bucket %d", e.Bucket), Cat: "rebalance", Phase: "X",
					TS: us(s.TNs), Dur: us(e.TNs - s.TNs), PID: 0, TID: e.Peer,
					Args: map[string]any{"bucket": e.Bucket, "from": e.Proc, "to": e.Peer, "replayed": e.N, "skew": s.Skew},
				})
			}
		case KindRebalanceRejected:
			out = append(out, chromeEvent{
				Name: "rebalance rejected", Cat: "rebalance", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Proc,
				Args: map[string]any{"bucket": e.Bucket, "to": e.Peer, "reason": e.Reason},
			})
		case KindWorkerDead:
			out = append(out, chromeEvent{
				Name: "worker dead", Cat: "fault", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Proc,
				Args: map[string]any{"reason": e.Reason},
			})
		case KindReplayStart:
			out = append(out, chromeEvent{
				Name: "replay", Cat: "fault", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Peer,
				Args: map[string]any{"bucket": e.Bucket},
			})
		case KindCheckpointEnd:
			out = append(out, chromeEvent{
				Name: "checkpoint", Cat: "checkpoint", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Proc,
				Args: map[string]any{"bucket": e.Bucket, "tuples": e.N, "ok": e.OK},
			})
		case KindNetworkViolation:
			out = append(out, chromeEvent{
				Name: "network violation", Cat: "audit", Phase: "i", TS: us(e.TNs), PID: 0, TID: e.Proc,
				Args: map[string]any{"to": e.Peer, "tuples": e.N},
			})
		}
	}
	// Close intervals left open at stream end (a killed worker's last busy).
	for proc := range busyStart {
		closeBusy(proc, lastNs)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: out})
}
