package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCountingAggregates(t *testing.T) {
	c := NewCounting()
	c.RunStart("parallel", []int{0, 1, 2})
	c.IterationStart(1, 1)
	c.IterationEnd(1, 1, 7)
	c.IterationEnd(1, 2, 0)
	c.RuleFirings(1, "anc", 10, 3)
	c.RuleFirings(1, "anc", 5, 1)
	c.MessageSent(0, 1, "anc@ch", 4)
	c.MessageSent(0, 1, "anc@ch", 2)
	c.MessageSent(0, 2, "anc@ch", 1)
	c.MessageReceived(1, 0, "anc@ch", 6, 2)
	c.TermProbe("counting", 0, false)
	c.TermProbe("counting", 1, true)
	c.RunEnd(5 * time.Millisecond)

	m := c.Snapshot()
	if m.Engine != "parallel" || m.Runs != 1 || m.TermProbes != 2 {
		t.Fatalf("header: %+v", m)
	}
	if m.WallNs != int64(5*time.Millisecond) {
		t.Fatalf("wall = %d", m.WallNs)
	}
	if len(m.Procs) != 3 {
		t.Fatalf("procs = %d", len(m.Procs))
	}
	p1 := m.Procs[1]
	if p1.Proc != 1 || p1.Firings != 15 || p1.DupFirings != 4 {
		t.Fatalf("proc 1 firings: %+v", p1)
	}
	if len(p1.Iterations) != 2 || p1.Iterations[0] != (IterationDelta{1, 7}) || p1.Iterations[1] != (IterationDelta{2, 0}) {
		t.Fatalf("proc 1 iterations: %+v", p1.Iterations)
	}
	if p1.TuplesReceived != 6 || p1.DupReceived != 2 || p1.Messages != 1 {
		t.Fatalf("proc 1 receive: %+v", p1)
	}
	if m.Procs[0].TuplesSent != 7 {
		t.Fatalf("proc 0 sent: %+v", m.Procs[0])
	}
	want := []EdgeMetrics{{From: 0, To: 1, Messages: 2, Tuples: 6}, {From: 0, To: 2, Messages: 1, Tuples: 1}}
	if len(m.Edges) != 2 || m.Edges[0] != want[0] || m.Edges[1] != want[1] {
		t.Fatalf("edges: %+v", m.Edges)
	}
}

func TestCountingBusyIdle(t *testing.T) {
	c := NewCounting()
	c.RunStart("parallel", []int{0})
	c.WorkerBusy(0)
	time.Sleep(2 * time.Millisecond)
	c.WorkerIdle(0)
	c.WorkerIdle(0) // repeated state: no extra transition
	time.Sleep(time.Millisecond)
	c.RunEnd(3 * time.Millisecond)
	p := c.Snapshot().Procs[0]
	if p.BusyNs <= 0 || p.IdleNs <= 0 {
		t.Fatalf("busy/idle not accumulated: %+v", p)
	}
	if p.Transitions != 2 {
		t.Fatalf("transitions = %d", p.Transitions)
	}
}

func TestCountingIgnoresUnknownProc(t *testing.T) {
	c := NewCounting()
	c.RunStart("parallel", []int{0})
	c.MessageSent(9, 0, "p", 1)
	c.MessageReceived(9, 0, "p", 1, 0)
	c.IterationEnd(9, 1, 1)
	c.RuleFirings(9, "p", 1, 0)
	c.WorkerBusy(9)
	if m := c.Snapshot(); len(m.Procs) != 1 || m.Procs[0].Firings != 0 {
		t.Fatalf("unknown proc leaked into metrics: %+v", m)
	}
}

func TestCountingConcurrent(t *testing.T) {
	c := NewCounting()
	procs := []int{0, 1, 2, 3}
	c.RunStart("parallel", procs)
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.RuleFirings(p, "anc", 2, 1)
				c.MessageSent(p, (p+1)%4, "anc@ch", 3)
				c.MessageReceived(p, (p+3)%4, "anc@ch", 3, 1)
			}
		}(p)
	}
	wg.Wait()
	c.RunEnd(time.Millisecond)
	m := c.Snapshot()
	for _, pm := range m.Procs {
		if pm.Firings != 2000 || pm.TuplesSent != 3000 || pm.TuplesReceived != 3000 {
			t.Fatalf("lost updates: %+v", pm)
		}
	}
}

func TestRecorderCanonical(t *testing.T) {
	r := NewRecorder()
	r.RunStart("lockstep", []int{0, 1})
	r.IterationStart(0, 1)
	r.RuleFirings(0, "anc", 3, 0)
	r.MessageSent(0, 1, "anc@ch", 2)
	r.MessageReceived(1, 0, "anc@ch", 2, 0)
	r.IterationEnd(0, 1, 3)
	r.TermProbe("lockstep", -1, true)
	r.RunEnd(time.Second)

	ev := r.Canonical()
	if len(ev) != 8 {
		t.Fatalf("events = %d", len(ev))
	}
	for i, e := range ev {
		if e.TNs != 0 || e.WallNs != 0 {
			t.Fatalf("event %d not canonical: %+v", i, e)
		}
		if e.Seq != i {
			t.Fatalf("seq %d at index %d", e.Seq, i)
		}
	}
	wantLines := []string{
		"run_start engine=lockstep procs=[0 1]",
		"iter_start proc=0 iter=1",
		"firings proc=0 pred=anc n=3 dup=0",
		"send from=0 to=1 pred=anc@ch n=2",
		"recv at=1 from=0 pred=anc@ch n=2 dup=0",
		"iter_end proc=0 iter=1 delta=3",
		"probe detector=lockstep n=-1 quiesced=true",
		"run_end",
	}
	got := r.CanonicalStrings()
	for i := range wantLines {
		if got[i] != wantLines[i] {
			t.Fatalf("line %d:\n got %q\nwant %q", i, got[i], wantLines[i])
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 8 || back[3].Kind != KindSend || back[3].Peer != 1 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil || Fanout(nil, nil) != nil {
		t.Fatal("empty fanout must collapse to nil")
	}
	r := NewRecorder()
	if Fanout(nil, r) != EventSink(r) {
		t.Fatal("single sink must collapse to itself")
	}
	c := NewCounting()
	f := Fanout(r, c)
	f.RunStart("parallel", []int{0})
	f.RuleFirings(0, "p", 4, 1)
	f.RunEnd(time.Millisecond)
	if len(r.Events()) != 3 {
		t.Fatalf("recorder missed events: %d", len(r.Events()))
	}
	if m := c.Snapshot(); m.Procs[0].Firings != 4 {
		t.Fatalf("counting missed events: %+v", m)
	}
}
