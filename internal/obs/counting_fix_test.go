package obs

import (
	"testing"
	"time"
)

// Regression: a repeated same-state transition (Busy while already busy,
// as a worker reports around each drained mailbox batch) used to drop the
// elapsed interval entirely. It must be attributed to the state that was
// in effect — and must not inflate the transition count.
func TestCountingRepeatedStateKeepsInterval(t *testing.T) {
	c := NewCounting()
	c.RunStart("dist", []int{0})
	c.WorkerBusy(0)
	time.Sleep(2 * time.Millisecond)
	c.WorkerBusy(0) // same state again: interval is still busy time
	time.Sleep(2 * time.Millisecond)
	c.WorkerIdle(0)
	c.RunEnd(4 * time.Millisecond)
	p := c.Snapshot().Procs[0]
	if p.BusyNs < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("repeated busy dropped its interval: busy=%v", time.Duration(p.BusyNs))
	}
	if p.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2 (busy, idle)", p.Transitions)
	}
}

// Regression: a worker killed mid-run leaves its final Busy (or Idle)
// unmatched; RunEnd must close the dangling interval instead of losing it,
// and must tolerate a processor that never transitioned at all.
func TestCountingUnmatchedTransitionAtShutdown(t *testing.T) {
	c := NewCounting()
	c.RunStart("dist", []int{0, 1, 2})
	c.WorkerBusy(0) // never goes idle: killed worker
	c.WorkerIdle(1) // never goes busy again
	// proc 2 reports nothing at all.
	time.Sleep(2 * time.Millisecond)
	c.RunEnd(2 * time.Millisecond)
	m := c.Snapshot()
	if m.Procs[0].BusyNs <= 0 {
		t.Fatalf("dangling busy not closed: %+v", m.Procs[0])
	}
	if m.Procs[1].IdleNs <= 0 {
		t.Fatalf("dangling idle not closed: %+v", m.Procs[1])
	}
	if m.Procs[2].BusyNs != 0 || m.Procs[2].IdleNs != 0 {
		t.Fatalf("silent proc accrued time: %+v", m.Procs[2])
	}
	// A second RunEnd-style close must not double-count: the swap to
	// state 0 makes the close idempotent.
	c.RunEnd(2 * time.Millisecond)
	if again := c.Snapshot().Procs[0].BusyNs; again != m.Procs[0].BusyNs {
		t.Fatalf("second RunEnd re-closed the interval: %d != %d", again, m.Procs[0].BusyNs)
	}
}

func TestCountingNetworkViolations(t *testing.T) {
	c := NewCounting()
	c.RunStart("dist", []int{0, 1})
	c.NetworkViolation(0, 1, 12)
	c.NetworkViolation(1, 0, 3)
	c.RunEnd(time.Millisecond)
	if n := c.Snapshot().NetworkViolations; n != 2 {
		t.Fatalf("violations = %d", n)
	}
}
