package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counting is the built-in metrics sink. It aggregates the event stream
// into per-processor counters — iteration deltas, rule firings, tuples
// sent and received per channel edge, and busy/idle wall time — without
// taking a lock on the hot path: every counter a worker touches after
// RunStart lives in that worker's own shard and is updated with a single
// atomic add, so workers never contend on shared cache lines and the sink
// is safe under the race detector.
//
// Registration (RunStart) is the only synchronized operation. A stratified
// or multi-phase run may call RunStart several times with the same or a
// growing processor set; counters accumulate across phases.
type Counting struct {
	mu     sync.Mutex
	engine string
	idx    map[int]int // proc id → dense shard index
	shards []*procShard
	wallNs atomic.Int64
	runs   atomic.Int64
	probes atomic.Int64

	// Fault-tolerance counters (distributed engine only).
	heartbeatMisses atomic.Int64
	workerDeaths    atomic.Int64
	reassigned      atomic.Int64
	replayedMsgs    atomic.Int64

	// Bounded-memory counters (distributed engine only).
	checkpoints    atomic.Int64
	ckptRejected   atomic.Int64
	truncatedMsgs  atomic.Int64
	creditStalls   atomic.Int64
	memoryPressure atomic.Int64
	droppedBatches atomic.Int64

	// Conformance-audit counter: edges observed outside the derived
	// minimal network graph.
	violations atomic.Int64

	// Incremental view maintenance counters (live View only).
	ivmApplies     atomic.Int64
	ivmApplyErrors atomic.Int64
	ivmDeltaTuples atomic.Int64
	ivmInserted    atomic.Int64
	ivmDeleted     atomic.Int64
	ivmOverdeleted atomic.Int64
	ivmRederived   atomic.Int64
	ivmFirings     atomic.Int64
	ivmMaintainNs  atomic.Int64
	ivmSnapshots   atomic.Int64
	ivmEpoch       atomic.Int64

	// Durable-store counters (views opened with a state directory, and
	// workers persisting checkpoints locally).
	walAppends       atomic.Int64
	walBytes         atomic.Int64
	walFsyncs        atomic.Int64
	segWrites        atomic.Int64
	segBytes         atomic.Int64
	segEpoch         atomic.Int64
	storeRecoveries  atomic.Int64
	recoverySkipped  atomic.Int64
	recoveryTorn     atomic.Int64
	recoveryReplayed atomic.Int64
}

// procShard holds one processor's counters. All fields after proc are
// written only by that processor's goroutine (or via atomics), never by
// its peers, except edge rows which are written by the *sending* side —
// still a single writer per cell in every engine. The one exception is
// iters: during distributed bucket recovery a not-yet-unwound zombie
// worker and the survivor replaying its bucket drive nodes with the same
// processor id concurrently, so the append takes a short mutex (once per
// local iteration — off the per-tuple hot path).
type procShard struct {
	proc        int
	itersMu     sync.Mutex
	iters       []IterationDelta
	firings     atomic.Int64
	dupFirings  atomic.Int64
	sentTuples  atomic.Int64
	recvTuples  atomic.Int64
	recvDup     atomic.Int64
	recvMsgs    atomic.Int64
	busyNs      atomic.Int64
	idleNs      atomic.Int64
	transitions atomic.Int64
	// lastState/lastNs track the open busy/idle interval: 0 unknown,
	// 1 busy, 2 idle. Atomics, not plain fields: during distributed
	// recovery a not-yet-unwound zombie worker and the survivor adopting
	// its bucket can report under the same processor id concurrently, and
	// RunEnd closes dangling intervals from yet another goroutine.
	lastState atomic.Int32
	lastNs    atomic.Int64

	// edgeTuples[j] / edgeMsgs[j] count traffic on channel t_{proc,q}
	// where q is the proc with dense index j. Written by proc (the
	// sender owns its outgoing rows).
	edgeTuples []atomic.Int64
	edgeMsgs   []atomic.Int64

	// recvEdgeTuples[j] / recvEdgeMsgs[j] count traffic that *arrived*
	// at proc from the proc with dense index j. Written by proc (the
	// receiver owns its incoming rows) — still a single writer per cell.
	// The two matrices agree in a healthy run; they diverge when the
	// routing layer delivers a batch somewhere other than where the
	// sender addressed it, which is exactly what the network-graph
	// auditor needs to see: MessageSent fires with the *intended*
	// destination before the coordinator routes, so a misroute is
	// invisible to the send-side matrix.
	recvEdgeTuples []atomic.Int64
	recvEdgeMsgs   []atomic.Int64
}

// NewCounting returns an empty counting sink.
func NewCounting() *Counting {
	return &Counting{idx: make(map[int]int)}
}

func (c *Counting) RunStart(engine string, procs []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.engine == "" {
		c.engine = engine
	}
	c.runs.Add(1)
	for _, p := range procs {
		if _, ok := c.idx[p]; !ok {
			c.idx[p] = len(c.shards)
			c.shards = append(c.shards, &procShard{proc: p})
		}
	}
	// (Re)size every shard's edge rows to the current universe.
	n := len(c.shards)
	for _, s := range c.shards {
		for len(s.edgeTuples) < n {
			s.edgeTuples = append(s.edgeTuples, atomic.Int64{})
			s.edgeMsgs = append(s.edgeMsgs, atomic.Int64{})
		}
		for len(s.recvEdgeTuples) < n {
			s.recvEdgeTuples = append(s.recvEdgeTuples, atomic.Int64{})
			s.recvEdgeMsgs = append(s.recvEdgeMsgs, atomic.Int64{})
		}
	}
}

// shard returns proc's shard, or nil for an unregistered processor (events
// for unknown procs are dropped rather than corrupting a neighbor's row).
func (c *Counting) shard(proc int) *procShard {
	i, ok := c.idx[proc]
	if !ok {
		return nil
	}
	return c.shards[i]
}

func (c *Counting) IterationStart(proc, iter int) {}

func (c *Counting) IterationEnd(proc, iter, delta int) {
	if s := c.shard(proc); s != nil {
		s.itersMu.Lock()
		s.iters = append(s.iters, IterationDelta{Iter: iter, Delta: delta})
		s.itersMu.Unlock()
	}
}

func (c *Counting) RuleFirings(proc int, pred string, firings, dup int64) {
	if s := c.shard(proc); s != nil {
		s.firings.Add(firings)
		s.dupFirings.Add(dup)
	}
}

func (c *Counting) MessageSent(from, to int, pred string, tuples int) {
	s := c.shard(from)
	if s == nil {
		return
	}
	s.sentTuples.Add(int64(tuples))
	if j, ok := c.idx[to]; ok && j < len(s.edgeTuples) {
		s.edgeTuples[j].Add(int64(tuples))
		s.edgeMsgs[j].Add(1)
	}
}

func (c *Counting) MessageReceived(at, from int, pred string, tuples, dup int) {
	s := c.shard(at)
	if s == nil {
		return
	}
	s.recvTuples.Add(int64(tuples))
	s.recvDup.Add(int64(dup))
	s.recvMsgs.Add(1)
	// Senders outside the registered universe (e.g. the coordinator
	// installing an adopted checkpoint reports from = -1) don't belong to
	// any channel — count the tuples above, skip the matrix.
	if j, ok := c.idx[from]; ok && j < len(s.recvEdgeTuples) {
		s.recvEdgeTuples[j].Add(int64(tuples))
		s.recvEdgeMsgs[j].Add(1)
	}
}

func (c *Counting) WorkerBusy(proc int) { c.transition(proc, 1) }
func (c *Counting) WorkerIdle(proc int) { c.transition(proc, 2) }

func (c *Counting) transition(proc int, state int32) {
	s := c.shard(proc)
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	// Attribute the elapsed interval to the *previous* state whatever the
	// new one is: a repeated Busy (the distributed worker emits one per
	// drained mailbox round) extends busy time rather than dropping the
	// interval, and an unmatched transition at shutdown is closed by
	// RunEnd the same way.
	prev := s.lastState.Swap(state)
	last := s.lastNs.Swap(now)
	if prev != 0 {
		if d := now - last; d > 0 {
			if prev == 1 {
				s.busyNs.Add(d)
			} else {
				s.idleNs.Add(d)
			}
		}
	}
	if prev != state {
		s.transitions.Add(1)
	}
}

func (c *Counting) TermProbe(detector string, probe int, quiesced bool) {
	c.probes.Add(1)
}

func (c *Counting) HeartbeatMiss(proc, misses int) { c.heartbeatMisses.Add(1) }

func (c *Counting) WorkerDead(proc int, reason string) { c.workerDeaths.Add(1) }

func (c *Counting) BucketReassigned(bucket, fromProc, toProc int) { c.reassigned.Add(1) }

func (c *Counting) ReplayStart(bucket, toProc int) {}

func (c *Counting) ReplayEnd(bucket, toProc, messages int) {
	c.replayedMsgs.Add(int64(messages))
}

func (c *Counting) CheckpointStart(bucket, proc int) {}

func (c *Counting) CheckpointEnd(bucket, proc, tuples int, ok bool) {
	if ok {
		c.checkpoints.Add(1)
	} else {
		c.ckptRejected.Add(1)
	}
}

func (c *Counting) LogTruncated(bucket, batches int) {
	c.truncatedMsgs.Add(int64(batches))
}

func (c *Counting) CreditStall(proc int, bytes int64) { c.creditStalls.Add(1) }

func (c *Counting) MemoryPressure(used, budget int64) { c.memoryPressure.Add(1) }

func (c *Counting) BatchDropped(fromProc, bucket, tuples int) { c.droppedBatches.Add(1) }

func (c *Counting) NetworkViolation(from, to int, tuples int64) { c.violations.Add(1) }

// IVMSink implementation: maintenance batches and snapshots of a live View.
func (c *Counting) ApplyStart(inserts, deletes int) {
	c.ivmDeltaTuples.Add(int64(inserts + deletes))
}

func (c *Counting) ApplyEnd(inserted, deleted, overdeleted, rederived int, firings int64, wall time.Duration, err error) {
	if err != nil {
		c.ivmApplyErrors.Add(1)
		return
	}
	c.ivmApplies.Add(1)
	c.ivmInserted.Add(int64(inserted))
	c.ivmDeleted.Add(int64(deleted))
	c.ivmOverdeleted.Add(int64(overdeleted))
	c.ivmRederived.Add(int64(rederived))
	c.ivmFirings.Add(firings)
	c.ivmMaintainNs.Add(int64(wall))
}

func (c *Counting) SnapshotTaken(epoch uint64, tuples int) {
	c.ivmSnapshots.Add(1)
	c.ivmEpoch.Store(int64(epoch))
}

// StoreSink implementation: WAL and segment traffic of a durable view.
func (c *Counting) WALAppend(kind byte, bytes int, synced bool) {
	c.walAppends.Add(1)
	c.walBytes.Add(int64(bytes))
	if synced {
		c.walFsyncs.Add(1)
	}
}

func (c *Counting) SegmentWrite(epoch uint64, bytes int64, tuples int) {
	c.segWrites.Add(1)
	c.segBytes.Add(bytes)
	c.segEpoch.Store(int64(epoch))
}

func (c *Counting) StoreRecovery(segEpoch uint64, walApplies, skipped int, torn, clean bool) {
	c.storeRecoveries.Add(1)
	c.segEpoch.Store(int64(segEpoch))
	c.recoveryReplayed.Add(int64(walApplies))
	c.recoverySkipped.Add(int64(skipped))
	if torn {
		c.recoveryTorn.Add(1)
	}
}

func (c *Counting) RunEnd(wall time.Duration) {
	c.wallNs.Add(int64(wall))
	c.mu.Lock()
	defer c.mu.Unlock()
	// Close any dangling busy/idle interval so totals cover the run — a
	// worker that died busy, or one whose final WorkerIdle never arrived,
	// still has its open interval accounted for.
	now := time.Now().UnixNano()
	for _, s := range c.shards {
		prev := s.lastState.Swap(0)
		last := s.lastNs.Load()
		if d := now - last; d > 0 {
			if prev == 1 {
				s.busyNs.Add(d)
			} else if prev == 2 {
				s.idleNs.Add(d)
			}
		}
	}
}

// Metrics is an immutable snapshot of a Counting sink.
type Metrics struct {
	// Engine names the engine of the first RunStart.
	Engine string `json:"engine"`
	// Runs counts RunStart calls (strata of a stratified run).
	Runs int64 `json:"runs"`
	// WallNs sums the wall-clock time reported by every RunEnd.
	WallNs int64 `json:"wall_ns"`
	// TermProbes counts termination-detector probes.
	TermProbes int64 `json:"term_probes"`
	// HeartbeatMisses counts heartbeat-miss events (distributed engine).
	HeartbeatMisses int64 `json:"heartbeat_misses,omitempty"`
	// WorkerDeaths counts workers the coordinator declared dead.
	WorkerDeaths int64 `json:"worker_deaths,omitempty"`
	// BucketsReassigned counts hash buckets moved to a survivor.
	BucketsReassigned int64 `json:"buckets_reassigned,omitempty"`
	// ReplayedMessages counts logged batches replayed during recovery.
	ReplayedMessages int64 `json:"replayed_messages,omitempty"`
	// Checkpoints counts accepted bucket checkpoints; CheckpointsRejected
	// counts replies discarded for checksum mismatch or injected faults.
	Checkpoints         int64 `json:"checkpoints,omitempty"`
	CheckpointsRejected int64 `json:"checkpoints_rejected,omitempty"`
	// TruncatedBatches counts logged batches dropped after a checkpoint
	// covered them.
	TruncatedBatches int64 `json:"truncated_batches,omitempty"`
	// CreditStalls counts sends that blocked on the credit gate.
	CreditStalls int64 `json:"credit_stalls,omitempty"`
	// MemoryPressureEvents counts budget overruns that forced an early
	// checkpoint cycle.
	MemoryPressureEvents int64 `json:"memory_pressure_events,omitempty"`
	// DroppedBatches counts data batches addressed to out-of-range
	// buckets and discarded by the router.
	DroppedBatches int64 `json:"dropped_batches,omitempty"`
	// NetworkViolations counts channels the conformance auditor found in
	// use despite the derived minimal network graph predicting them idle.
	NetworkViolations int64 `json:"network_violations,omitempty"`
	// IVM counters: maintenance batches applied to a live View, the input
	// delta tuples they carried, the net model changes, the DRed
	// overdelete/rederive volume, the derived work enumerated, and total
	// maintenance wall time. IVMEpoch is the latest published view epoch.
	IVMApplies     int64 `json:"ivm_applies,omitempty"`
	IVMApplyErrors int64 `json:"ivm_apply_errors,omitempty"`
	IVMDeltaTuples int64 `json:"ivm_delta_tuples,omitempty"`
	IVMInserted    int64 `json:"ivm_inserted,omitempty"`
	IVMDeleted     int64 `json:"ivm_deleted,omitempty"`
	IVMOverdeleted int64 `json:"ivm_overdeleted,omitempty"`
	IVMRederived   int64 `json:"ivm_rederived,omitempty"`
	IVMFirings     int64 `json:"ivm_firings,omitempty"`
	IVMMaintainNs  int64 `json:"ivm_maintain_ns,omitempty"`
	IVMSnapshots   int64 `json:"ivm_snapshots,omitempty"`
	IVMEpoch       int64 `json:"ivm_epoch,omitempty"`
	// Durable-store counters: WAL appends/bytes and how many appends
	// fsynced, segment compactions and their sizes, the latest segment
	// epoch, and recovery statistics — recoveries performed, WAL records
	// replayed into the model, corrupt records skipped past
	// (skip-and-report mode), and torn tails truncated.
	WALAppends       int64 `json:"wal_appends,omitempty"`
	WALBytes         int64 `json:"wal_bytes,omitempty"`
	WALFsyncs        int64 `json:"wal_fsyncs,omitempty"`
	SegmentWrites    int64 `json:"segment_writes,omitempty"`
	SegmentBytes     int64 `json:"segment_bytes,omitempty"`
	SegmentEpoch     int64 `json:"segment_epoch,omitempty"`
	StoreRecoveries  int64 `json:"store_recoveries,omitempty"`
	RecoveryReplayed int64 `json:"recovery_replayed,omitempty"`
	RecoverySkipped  int64 `json:"recovery_skipped,omitempty"`
	RecoveryTorn     int64 `json:"recovery_torn,omitempty"`
	// Procs holds per-processor counters in registration order.
	Procs []ProcMetrics `json:"procs"`
	// Edges holds one entry per channel that carried at least one
	// message, ordered by (From, To) registration order. Counted on the
	// sending side with the *intended* destination.
	Edges []EdgeMetrics `json:"edges"`
	// RecvEdges is the same matrix counted on the receiving side with
	// the *actual* destination. A divergence from Edges means the
	// routing layer delivered a batch somewhere the sender didn't
	// address it — the network-graph auditor checks both.
	RecvEdges []EdgeMetrics `json:"recv_edges,omitempty"`
}

// ProcMetrics is one processor's aggregate counters.
type ProcMetrics struct {
	Proc           int              `json:"proc"`
	Iterations     []IterationDelta `json:"iterations"`
	Firings        int64            `json:"firings"`
	DupFirings     int64            `json:"dup_firings"`
	TuplesSent     int64            `json:"tuples_sent"`
	TuplesReceived int64            `json:"tuples_received"`
	DupReceived    int64            `json:"dup_received"`
	Messages       int64            `json:"messages_received"`
	BusyNs         int64            `json:"busy_ns"`
	IdleNs         int64            `json:"idle_ns"`
	Transitions    int64            `json:"transitions"`
}

// IterationDelta records how many new tuples one semi-naive iteration
// derived. Iteration counters restart at each stratum or SCC, so the
// sequence is a timeline, not a map.
type IterationDelta struct {
	Iter  int `json:"iter"`
	Delta int `json:"delta"`
}

// EdgeMetrics is the traffic on one directed channel t_{From,To}.
type EdgeMetrics struct {
	From     int   `json:"from"`
	To       int   `json:"to"`
	Messages int64 `json:"messages"`
	Tuples   int64 `json:"tuples"`
}

// Snapshot copies the current counters. Call it after the run completes;
// a snapshot taken mid-run sees a consistent prefix of each counter but
// may tear across counters.
func (c *Counting) Snapshot() *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Metrics{
		Engine:               c.engine,
		Runs:                 c.runs.Load(),
		WallNs:               c.wallNs.Load(),
		TermProbes:           c.probes.Load(),
		HeartbeatMisses:      c.heartbeatMisses.Load(),
		WorkerDeaths:         c.workerDeaths.Load(),
		BucketsReassigned:    c.reassigned.Load(),
		ReplayedMessages:     c.replayedMsgs.Load(),
		Checkpoints:          c.checkpoints.Load(),
		CheckpointsRejected:  c.ckptRejected.Load(),
		TruncatedBatches:     c.truncatedMsgs.Load(),
		CreditStalls:         c.creditStalls.Load(),
		MemoryPressureEvents: c.memoryPressure.Load(),
		DroppedBatches:       c.droppedBatches.Load(),
		NetworkViolations:    c.violations.Load(),
		IVMApplies:           c.ivmApplies.Load(),
		IVMApplyErrors:       c.ivmApplyErrors.Load(),
		IVMDeltaTuples:       c.ivmDeltaTuples.Load(),
		IVMInserted:          c.ivmInserted.Load(),
		IVMDeleted:           c.ivmDeleted.Load(),
		IVMOverdeleted:       c.ivmOverdeleted.Load(),
		IVMRederived:         c.ivmRederived.Load(),
		IVMFirings:           c.ivmFirings.Load(),
		IVMMaintainNs:        c.ivmMaintainNs.Load(),
		IVMSnapshots:         c.ivmSnapshots.Load(),
		IVMEpoch:             c.ivmEpoch.Load(),
		WALAppends:           c.walAppends.Load(),
		WALBytes:             c.walBytes.Load(),
		WALFsyncs:            c.walFsyncs.Load(),
		SegmentWrites:        c.segWrites.Load(),
		SegmentBytes:         c.segBytes.Load(),
		SegmentEpoch:         c.segEpoch.Load(),
		StoreRecoveries:      c.storeRecoveries.Load(),
		RecoveryReplayed:     c.recoveryReplayed.Load(),
		RecoverySkipped:      c.recoverySkipped.Load(),
		RecoveryTorn:         c.recoveryTorn.Load(),
		// Non-nil so a communication-free run still serializes as
		// "edges": [] — consumers get a stable document shape.
		Edges: []EdgeMetrics{},
	}
	for _, s := range c.shards {
		s.itersMu.Lock()
		iters := append([]IterationDelta(nil), s.iters...)
		s.itersMu.Unlock()
		pm := ProcMetrics{
			Proc:           s.proc,
			Iterations:     iters,
			Firings:        s.firings.Load(),
			DupFirings:     s.dupFirings.Load(),
			TuplesSent:     s.sentTuples.Load(),
			TuplesReceived: s.recvTuples.Load(),
			DupReceived:    s.recvDup.Load(),
			Messages:       s.recvMsgs.Load(),
			BusyNs:         s.busyNs.Load(),
			IdleNs:         s.idleNs.Load(),
			Transitions:    s.transitions.Load(),
		}
		m.Procs = append(m.Procs, pm)
		for j := range s.edgeTuples {
			if n := s.edgeMsgs[j].Load(); n > 0 {
				m.Edges = append(m.Edges, EdgeMetrics{
					From:     s.proc,
					To:       c.shards[j].proc,
					Messages: n,
					Tuples:   s.edgeTuples[j].Load(),
				})
			}
		}
		for j := range s.recvEdgeTuples {
			if n := s.recvEdgeMsgs[j].Load(); n > 0 {
				m.RecvEdges = append(m.RecvEdges, EdgeMetrics{
					From:     c.shards[j].proc,
					To:       s.proc,
					Messages: n,
					Tuples:   s.recvEdgeTuples[j].Load(),
				})
			}
		}
	}
	return m
}
