package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"parlog/internal/metrics"
)

// Histogram bounds shared by the MetricsSink's instruments. Iteration
// latencies span microseconds (in-process lockstep) to tens of seconds
// (distributed runs under fault injection); tuple-count distributions span
// single tuples to millions.
var (
	latencyBounds = metrics.ExpBuckets(1e-5, 4, 12) // 10µs … ~167s
	sizeBounds    = metrics.ExpBuckets(1, 4, 12)    // 1 … ~4.2M tuples
)

// MetricsSink adapts the EventSink stream into a metrics.Registry: the
// live half of the observability layer. Where Counting aggregates for a
// post-run snapshot, MetricsSink feeds instruments an HTTP endpoint
// scrapes mid-run, adding the paper-facing distributions the snapshot
// lacks — per-bucket load histograms with max/mean skew gauges for the
// chosen discriminating function (Section 4's load-balance concern) and a
// dense per-channel t_{i,j} tuple-volume matrix (Section 5's network
// graph, observed).
//
// Concurrency mirrors Counting: registration happens under a mutex at
// RunStart; every hot-path update is a single atomic on an instrument the
// reporting processor owns. Skew gauges are derived lazily by an
// OnCollect hook, so scrapes — not workers — pay for the division.
type MetricsSink struct {
	reg *metrics.Registry

	mu     sync.Mutex
	idx    map[int]int
	shards []*msShard

	runsTotal  *metrics.Counter
	runActive  *metrics.Gauge
	workers    *metrics.Gauge
	wallSec    *metrics.Counter // summed run wall time, milliseconds
	iterations *metrics.Counter
	iterSec    *metrics.Histogram
	iterDelta  *metrics.Histogram
	firings    *metrics.Counter
	dupFirings *metrics.Counter
	sentTuples *metrics.Counter
	recvTuples *metrics.Counter
	recvDup    *metrics.Counter
	sentMsgs   *metrics.Counter
	recvMsgs   *metrics.Counter
	batchSize  *metrics.Histogram
	busyNs     *metrics.Counter
	idleNs     *metrics.Counter
	probes     *metrics.Counter

	heartbeatMisses *metrics.Counter
	workerDeaths    *metrics.Counter
	reassigned      *metrics.Counter
	replayed        *metrics.Counter
	ckptOK          *metrics.Counter
	ckptRejected    *metrics.Counter
	truncated       *metrics.Counter
	creditStalls    *metrics.Counter
	memPressure     *metrics.Counter
	dropped         *metrics.Counter
	violations      *metrics.Counter

	planReordered *metrics.Counter
	planPushdowns *metrics.Counter
	planDemand    *metrics.Counter

	ivmApplies     *metrics.Counter
	ivmApplyErrors *metrics.Counter
	ivmDeltaIns    *metrics.Counter
	ivmDeltaDel    *metrics.Counter
	ivmInserted    *metrics.Counter
	ivmDeleted     *metrics.Counter
	ivmOverdeleted *metrics.Counter
	ivmRederived   *metrics.Counter
	ivmFirings     *metrics.Counter
	ivmMaintainSec *metrics.Histogram
	ivmDeltaSize   *metrics.Histogram
	ivmSnapshots   *metrics.Counter
	ivmEpoch       *metrics.Gauge

	walAppends      *metrics.Counter
	walBytes        *metrics.Counter
	walFsyncs       *metrics.Counter
	segWrites       *metrics.Counter
	segBytes        *metrics.Counter
	segEpochG       *metrics.Gauge
	storeRecoveries *metrics.Counter
	walReplayed     *metrics.Counter
	walSkipped      *metrics.Counter
	walTorn         *metrics.Counter

	bucketLoad  *metrics.Histogram // tuples derived per hash bucket, fed per run
	skewMax     *metrics.Gauge     // max load / mean load across buckets
	skewMean    *metrics.Gauge     // mean load across buckets
	loadSampled atomic.Int64       // per-proc loads already folded into bucketLoad

	rebMigrations *metrics.Counter
	rebRejected   *metrics.Counter
	rebReplayed   *metrics.Counter
	rebLastSkew   *metrics.Gauge
}

// msShard is one processor's owned state: the open iteration's start time,
// its cumulative derived-tuple load, busy/idle interval tracking, and its
// outgoing row of the channel matrix.
type msShard struct {
	proc        int
	iterStartNs atomic.Int64
	load        atomic.Int64 // Σ iteration deltas: tuples this bucket derived
	loadGauge   *metrics.Gauge
	lastState   atomic.Int32
	lastNs      atomic.Int64
	edgeTuples  []*metrics.Counter
	edgeMsgs    []*metrics.Counter
}

// NewMetricsSink builds a sink feeding reg. All run-scoped instruments are
// registered eagerly so a scrape before the first event still sees the
// full schema; per-processor and per-channel instruments appear at
// RunStart, when the processor universe is known.
func NewMetricsSink(reg *metrics.Registry) *MetricsSink {
	m := &MetricsSink{
		reg: reg,
		idx: make(map[int]int),

		runsTotal:  reg.Counter("parlog_runs_total", "evaluation runs (strata count separately)"),
		runActive:  reg.Gauge("parlog_run_active", "1 while a run is executing"),
		workers:    reg.Gauge("parlog_workers", "processors of the current run"),
		wallSec:    reg.Counter("parlog_run_wall_ms_total", "summed run wall time in milliseconds"),
		iterations: reg.Counter("parlog_iterations_total", "semi-naive iterations across processors"),
		iterSec:    reg.Histogram("parlog_iteration_seconds", "wall time of one processor's semi-naive iteration", latencyBounds),
		iterDelta:  reg.Histogram("parlog_iteration_delta_tuples", "new tuples one iteration derived", sizeBounds),
		firings:    reg.Counter("parlog_rule_firings_total", "successful ground substitutions"),
		dupFirings: reg.Counter("parlog_duplicate_firings_total", "firings rederiving a known tuple (the paper's redundancy currency)"),
		sentTuples: reg.Counter("parlog_tuples_sent_total", "tuples shipped between processors"),
		recvTuples: reg.Counter("parlog_tuples_received_total", "tuples arriving at processors"),
		recvDup:    reg.Counter("parlog_duplicate_tuples_received_total", "received tuples the consumer already knew"),
		sentMsgs:   reg.Counter("parlog_messages_sent_total", "tuple batches shipped between processors"),
		recvMsgs:   reg.Counter("parlog_messages_received_total", "tuple batches arriving at processors"),
		batchSize:  reg.Histogram("parlog_batch_tuples", "tuples per shipped batch", sizeBounds),
		busyNs:     reg.Counter("parlog_worker_busy_ns_total", "nanoseconds processors spent evaluating"),
		idleNs:     reg.Counter("parlog_worker_idle_ns_total", "nanoseconds processors spent waiting for messages"),
		probes:     reg.Counter("parlog_term_probes_total", "termination-detector probes"),

		heartbeatMisses: reg.Counter("parlog_heartbeat_misses_total", "heartbeat intervals a worker stayed silent"),
		workerDeaths:    reg.Counter("parlog_worker_deaths_total", "workers declared dead by the coordinator"),
		reassigned:      reg.Counter("parlog_buckets_reassigned_total", "hash buckets moved to a survivor"),
		replayed:        reg.Counter("parlog_replayed_batches_total", "logged batches replayed during recovery"),
		ckptOK:          reg.Counter("parlog_checkpoints_total", "bucket checkpoint replies", metrics.L("ok", "true")),
		ckptRejected:    reg.Counter("parlog_checkpoints_total", "bucket checkpoint replies", metrics.L("ok", "false")),
		truncated:       reg.Counter("parlog_truncated_batches_total", "logged batches dropped after a checkpoint covered them"),
		creditStalls:    reg.Counter("parlog_credit_stalls_total", "sends that blocked on the credit gate"),
		memPressure:     reg.Counter("parlog_memory_pressure_total", "coordinator memory-budget overruns"),
		dropped:         reg.Counter("parlog_dropped_batches_total", "data batches addressed to out-of-range buckets"),
		violations:      reg.Counter("parlog_network_violations_total", "channels used despite the minimal network graph predicting them idle"),

		planReordered: reg.Counter("parlog_plan_reordered_atoms_total", "body atoms the planner moved away from their textual join position"),
		planPushdowns: reg.Counter("parlog_plan_pushdown_constraints_total", "constraints checked before the final join level of their plan"),
		planDemand:    reg.Counter("parlog_plan_demand_rules_total", "magic/seed rules produced by demand (magic-sets) rewrites"),

		ivmApplies:     reg.Counter("parlog_ivm_applies_total", "maintenance batches applied", metrics.L("ok", "true")),
		ivmApplyErrors: reg.Counter("parlog_ivm_applies_total", "maintenance batches applied", metrics.L("ok", "false")),
		ivmDeltaIns:    reg.Counter("parlog_ivm_delta_tuples_total", "EDB delta tuples submitted to Apply", metrics.L("op", "insert")),
		ivmDeltaDel:    reg.Counter("parlog_ivm_delta_tuples_total", "EDB delta tuples submitted to Apply", metrics.L("op", "delete")),
		ivmInserted:    reg.Counter("parlog_ivm_inserted_total", "tuples that became live across maintenance batches"),
		ivmDeleted:     reg.Counter("parlog_ivm_deleted_total", "tuples that became dead across maintenance batches"),
		ivmOverdeleted: reg.Counter("parlog_ivm_overdeleted_total", "tuples killed by the DRed overdeletion pass"),
		ivmRederived:   reg.Counter("parlog_ivm_rederived_total", "overdeleted tuples revived by the rederivation pass"),
		ivmFirings:     reg.Counter("parlog_ivm_firings_total", "ground substitutions enumerated by maintenance passes"),
		ivmMaintainSec: reg.Histogram("parlog_ivm_maintain_seconds", "wall time of one maintenance batch", latencyBounds),
		ivmDeltaSize:   reg.Histogram("parlog_ivm_delta_tuples", "EDB delta tuples per maintenance batch", sizeBounds),
		ivmSnapshots:   reg.Counter("parlog_ivm_snapshots_total", "immutable view snapshots published"),
		ivmEpoch:       reg.Gauge("parlog_ivm_epoch", "latest published view epoch"),

		walAppends:      reg.Counter("parlog_wal_appends_total", "records appended to the write-ahead log"),
		walBytes:        reg.Counter("parlog_wal_bytes_total", "framed bytes appended to the write-ahead log"),
		walFsyncs:       reg.Counter("parlog_wal_fsyncs_total", "WAL appends that forced an fsync before acknowledgment"),
		segWrites:       reg.Counter("parlog_segment_writes_total", "segment snapshots compacted to disk"),
		segBytes:        reg.Counter("parlog_segment_bytes_total", "bytes written as segment snapshots"),
		segEpochG:       reg.Gauge("parlog_segment_epoch", "epoch of the newest durable segment"),
		storeRecoveries: reg.Counter("parlog_store_recoveries_total", "cold-start recoveries from the state directory"),
		walReplayed:     reg.Counter("parlog_wal_replayed_records_total", "WAL apply records folded into the model during recovery"),
		walSkipped:      reg.Counter("parlog_wal_skipped_records_total", "corrupt records skipped past during recovery (skip-and-report mode)"),
		walTorn:         reg.Counter("parlog_wal_torn_tails_total", "recoveries that truncated a torn WAL tail"),

		bucketLoad: reg.Histogram("parlog_bucket_load_tuples", "tuples derived per hash bucket over completed runs", sizeBounds),
		skewMax:    reg.Gauge("parlog_load_skew_max_ratio", "max bucket load / mean bucket load of the current processor set"),
		skewMean:   reg.Gauge("parlog_load_skew_mean_tuples", "mean tuples derived per hash bucket"),

		rebMigrations: reg.Counter("parlog_rebalance_migrations_total", "live bucket migrations applied by the skew-triggered rebalancer"),
		rebRejected:   reg.Counter("parlog_rebalance_rejected_total", "candidate repartitionings rejected by the transferability check"),
		rebReplayed:   reg.Counter("parlog_rebalance_replayed_batches_total", "logged batches replayed to a bucket's new owner during migrations"),
		rebLastSkew:   reg.Gauge("parlog_rebalance_last_skew", "window skew ratio of the most recent migration trigger"),
	}
	reg.OnCollect(m.collectSkew)
	return m
}

// Registry returns the backing registry, for callers wiring the sink and
// the HTTP server separately.
func (m *MetricsSink) Registry() *metrics.Registry { return m.reg }

// collectSkew refreshes the load-skew gauges from the per-shard loads —
// run at scrape time, off the hot path. Skew is max/mean over the buckets
// that exist; a perfectly balanced discriminating function scores 1.0.
func (m *MetricsSink) collectSkew() {
	m.mu.Lock()
	shards := append([]*msShard(nil), m.shards...)
	m.mu.Unlock()
	if len(shards) == 0 {
		return
	}
	var total, max int64
	for _, s := range shards {
		l := s.load.Load()
		total += l
		if l > max {
			max = l
		}
	}
	mean := float64(total) / float64(len(shards))
	m.skewMean.Set(mean)
	if mean > 0 {
		m.skewMax.Set(float64(max) / mean)
	} else {
		m.skewMax.Set(0)
	}
}

func (m *MetricsSink) shard(proc int) *msShard {
	i, ok := m.idx[proc]
	if !ok {
		return nil
	}
	return m.shards[i]
}

func (m *MetricsSink) RunStart(engine string, procs []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runsTotal.Inc()
	m.runActive.Set(1)
	for _, p := range procs {
		if _, ok := m.idx[p]; !ok {
			m.idx[p] = len(m.shards)
			m.shards = append(m.shards, &msShard{
				proc:      p,
				loadGauge: m.reg.Gauge("parlog_bucket_load_tuples_current", "tuples derived so far by each hash bucket", metrics.L("proc", itoa(p))),
			})
		}
	}
	// (Re)build every shard's outgoing channel row over the grown
	// universe: a dense t_{i,j} matrix, registered once per pair.
	n := len(m.shards)
	for _, s := range m.shards {
		for len(s.edgeTuples) < n {
			to := m.shards[len(s.edgeTuples)].proc
			s.edgeTuples = append(s.edgeTuples, m.reg.Counter(
				"parlog_channel_tuples_total", "tuples shipped on channel t_{from,to}",
				metrics.L("from", itoa(s.proc)), metrics.L("to", itoa(to))))
			s.edgeMsgs = append(s.edgeMsgs, m.reg.Counter(
				"parlog_channel_messages_total", "batches shipped on channel t_{from,to}",
				metrics.L("from", itoa(s.proc)), metrics.L("to", itoa(to))))
		}
	}
	m.workers.Set(float64(n))
}

func (m *MetricsSink) IterationStart(proc, iter int) {
	if s := m.shard(proc); s != nil {
		s.iterStartNs.Store(time.Now().UnixNano())
	}
}

func (m *MetricsSink) IterationEnd(proc, iter, delta int) {
	s := m.shard(proc)
	if s == nil {
		return
	}
	m.iterations.Inc()
	if start := s.iterStartNs.Swap(0); start != 0 {
		m.iterSec.Observe(float64(time.Now().UnixNano()-start) / 1e9)
	}
	m.iterDelta.Observe(float64(delta))
	s.loadGauge.Set(float64(s.load.Add(int64(delta))))
}

func (m *MetricsSink) RuleFirings(proc int, pred string, firings, dup int64) {
	m.firings.Add(firings)
	m.dupFirings.Add(dup)
}

func (m *MetricsSink) MessageSent(from, to int, pred string, tuples int) {
	m.sentTuples.Add(int64(tuples))
	m.sentMsgs.Inc()
	m.batchSize.Observe(float64(tuples))
	s := m.shard(from)
	if s == nil {
		return
	}
	if j, ok := m.idx[to]; ok && j < len(s.edgeTuples) {
		s.edgeTuples[j].Add(int64(tuples))
		s.edgeMsgs[j].Inc()
	}
}

func (m *MetricsSink) MessageReceived(at, from int, pred string, tuples, dup int) {
	m.recvTuples.Add(int64(tuples))
	m.recvDup.Add(int64(dup))
	m.recvMsgs.Inc()
}

func (m *MetricsSink) WorkerBusy(proc int) { m.transition(proc, 1) }
func (m *MetricsSink) WorkerIdle(proc int) { m.transition(proc, 2) }

func (m *MetricsSink) transition(proc int, state int32) {
	s := m.shard(proc)
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	prev := s.lastState.Swap(state)
	last := s.lastNs.Swap(now)
	if prev != 0 {
		if d := now - last; d > 0 {
			if prev == 1 {
				m.busyNs.Add(d)
			} else {
				m.idleNs.Add(d)
			}
		}
	}
}

func (m *MetricsSink) TermProbe(detector string, probe int, quiesced bool) { m.probes.Inc() }

func (m *MetricsSink) HeartbeatMiss(proc, misses int) { m.heartbeatMisses.Inc() }

func (m *MetricsSink) WorkerDead(proc int, reason string) { m.workerDeaths.Inc() }

func (m *MetricsSink) BucketReassigned(bucket, fromProc, toProc int) { m.reassigned.Inc() }

func (m *MetricsSink) ReplayStart(bucket, toProc int) {}

func (m *MetricsSink) ReplayEnd(bucket, toProc, messages int) {
	m.replayed.Add(int64(messages))
}

func (m *MetricsSink) CheckpointStart(bucket, proc int) {}

func (m *MetricsSink) CheckpointEnd(bucket, proc, tuples int, ok bool) {
	if ok {
		m.ckptOK.Inc()
	} else {
		m.ckptRejected.Inc()
	}
}

func (m *MetricsSink) LogTruncated(bucket, batches int) { m.truncated.Add(int64(batches)) }

func (m *MetricsSink) CreditStall(proc int, bytes int64) { m.creditStalls.Inc() }

func (m *MetricsSink) MemoryPressure(used, budget int64) { m.memPressure.Inc() }

func (m *MetricsSink) BatchDropped(fromProc, bucket, tuples int) { m.dropped.Inc() }

func (m *MetricsSink) NetworkViolation(from, to int, tuples int64) { m.violations.Inc() }

// MigrationStart, MigrationEnd and RebalanceRejected implement the optional
// RebalanceSink extension: the adaptive load balancer's traffic.
func (m *MetricsSink) MigrationStart(bucket, fromProc, toProc int, skew float64) {
	m.rebLastSkew.Set(skew)
}

func (m *MetricsSink) MigrationEnd(bucket, fromProc, toProc, replayed int) {
	m.rebMigrations.Inc()
	m.rebReplayed.Add(int64(replayed))
}

func (m *MetricsSink) RebalanceRejected(bucket, fromProc, toProc int, reason string) {
	m.rebRejected.Inc()
}

// PlanCompiled and DemandRewrite implement the optional PlanSink extension.
func (m *MetricsSink) PlanCompiled(proc int, pred string, moved, pushdowns int) {
	m.planReordered.Add(int64(moved))
	m.planPushdowns.Add(int64(pushdowns))
}

func (m *MetricsSink) DemandRewrite(goal string, rules, magic int) {
	m.planDemand.Add(int64(magic))
}

// ApplyStart, ApplyEnd and SnapshotTaken implement the optional IVMSink
// extension: the live-view counterpart of the run instruments.
func (m *MetricsSink) ApplyStart(inserts, deletes int) {
	m.ivmDeltaIns.Add(int64(inserts))
	m.ivmDeltaDel.Add(int64(deletes))
	m.ivmDeltaSize.Observe(float64(inserts + deletes))
}

func (m *MetricsSink) ApplyEnd(inserted, deleted, overdeleted, rederived int, firings int64, wall time.Duration, err error) {
	if err != nil {
		m.ivmApplyErrors.Inc()
		return
	}
	m.ivmApplies.Inc()
	m.ivmInserted.Add(int64(inserted))
	m.ivmDeleted.Add(int64(deleted))
	m.ivmOverdeleted.Add(int64(overdeleted))
	m.ivmRederived.Add(int64(rederived))
	m.ivmFirings.Add(firings)
	m.ivmMaintainSec.Observe(wall.Seconds())
}

func (m *MetricsSink) SnapshotTaken(epoch uint64, tuples int) {
	m.ivmSnapshots.Inc()
	m.ivmEpoch.Set(float64(epoch))
}

// WALAppend, SegmentWrite and StoreRecovery implement the optional
// StoreSink extension: durability traffic of a view opened with a state
// directory.
func (m *MetricsSink) WALAppend(kind byte, bytes int, synced bool) {
	m.walAppends.Inc()
	m.walBytes.Add(int64(bytes))
	if synced {
		m.walFsyncs.Inc()
	}
}

func (m *MetricsSink) SegmentWrite(epoch uint64, bytes int64, tuples int) {
	m.segWrites.Inc()
	m.segBytes.Add(bytes)
	m.segEpochG.Set(float64(epoch))
}

func (m *MetricsSink) StoreRecovery(segEpoch uint64, walApplies, skipped int, torn, clean bool) {
	m.storeRecoveries.Inc()
	m.segEpochG.Set(float64(segEpoch))
	m.walReplayed.Add(int64(walApplies))
	m.walSkipped.Add(int64(skipped))
	if torn {
		m.walTorn.Inc()
	}
}

func (m *MetricsSink) RunEnd(wall time.Duration) {
	m.runActive.Set(0)
	m.wallSec.Add(wall.Milliseconds())
	m.mu.Lock()
	shards := append([]*msShard(nil), m.shards...)
	m.mu.Unlock()
	// Close dangling busy/idle intervals (same contract as Counting).
	now := time.Now().UnixNano()
	for _, s := range shards {
		prev := s.lastState.Swap(0)
		last := s.lastNs.Load()
		if d := now - last; d > 0 {
			if prev == 1 {
				m.busyNs.Add(d)
			} else if prev == 2 {
				m.idleNs.Add(d)
			}
		}
	}
	// Fold each bucket's newly accumulated load into the distribution —
	// only the increment since the last RunEnd, so stratified runs don't
	// double-count earlier strata.
	var sampled int64
	for _, s := range shards {
		l := s.load.Load()
		sampled += l
	}
	if prev := m.loadSampled.Swap(sampled); sampled > prev {
		for _, s := range shards {
			m.bucketLoad.Observe(float64(s.load.Load()))
		}
	}
	m.collectSkew()
}

// itoa is strconv.Itoa without the import weight in the hot file — label
// construction happens only at registration.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}
