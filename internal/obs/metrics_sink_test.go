package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"parlog/internal/metrics"
)

func snapValue(t *testing.T, reg *metrics.Registry, name string, labels ...string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if s.Value != nil {
			return *s.Value
		}
		return float64(s.Count)
	}
	t.Fatalf("metric %s%v not found", name, labels)
	return 0
}

func TestMetricsSinkAggregates(t *testing.T) {
	reg := metrics.New()
	m := NewMetricsSink(reg)
	m.RunStart("dist", []int{0, 1, 2})
	m.IterationStart(0, 1)
	m.IterationEnd(0, 1, 30)
	m.IterationStart(1, 1)
	m.IterationEnd(1, 1, 6)
	m.IterationStart(2, 1)
	m.IterationEnd(2, 1, 0)
	m.RuleFirings(0, "anc", 10, 4)
	m.MessageSent(0, 1, "anc@ch", 5)
	m.MessageSent(0, 1, "anc@ch", 3)
	m.MessageSent(1, 2, "anc@ch", 2)
	m.MessageReceived(1, 0, "anc@ch", 8, 1)
	m.NetworkViolation(2, 0, 7)
	m.RunEnd(5 * time.Millisecond)

	if v := snapValue(t, reg, "parlog_tuples_sent_total"); v != 10 {
		t.Fatalf("tuples sent = %v", v)
	}
	// Per-channel t_{i,j} matrix.
	if v := snapValue(t, reg, "parlog_channel_tuples_total", "from", "0", "to", "1"); v != 8 {
		t.Fatalf("t_{0,1} = %v", v)
	}
	if v := snapValue(t, reg, "parlog_channel_tuples_total", "from", "1", "to", "2"); v != 2 {
		t.Fatalf("t_{1,2} = %v", v)
	}
	if v := snapValue(t, reg, "parlog_channel_messages_total", "from", "0", "to", "1"); v != 2 {
		t.Fatalf("messages_{0,1} = %v", v)
	}
	if v := snapValue(t, reg, "parlog_network_violations_total"); v != 1 {
		t.Fatalf("violations = %v", v)
	}
	// Load and skew: loads are 30, 6, 0 → mean 12, max ratio 2.5.
	if v := snapValue(t, reg, "parlog_bucket_load_tuples_current", "proc", "0"); v != 30 {
		t.Fatalf("load proc 0 = %v", v)
	}
	if v := snapValue(t, reg, "parlog_load_skew_mean_tuples"); v != 12 {
		t.Fatalf("skew mean = %v", v)
	}
	if v := snapValue(t, reg, "parlog_load_skew_max_ratio"); v != 2.5 {
		t.Fatalf("skew max ratio = %v", v)
	}
	// The bucket-load histogram got one observation per bucket.
	var hist metrics.MetricSnapshot
	for _, s := range reg.Snapshot() {
		if s.Name == "parlog_bucket_load_tuples" {
			hist = s
		}
	}
	if hist.Count != 3 {
		t.Fatalf("bucket load histogram count = %d", hist.Count)
	}

	// The exposition the sink produces must validate.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, b.String())
	}
}

// A second run over the same processors must not double-count earlier
// loads in the bucket-load distribution, and must not re-register
// per-channel instruments.
func TestMetricsSinkSecondRun(t *testing.T) {
	reg := metrics.New()
	m := NewMetricsSink(reg)
	m.RunStart("parallel", []int{0, 1})
	m.IterationEnd(0, 1, 4)
	m.RunEnd(time.Millisecond)
	m.RunStart("parallel", []int{0, 1})
	m.IterationEnd(1, 1, 4)
	m.RunEnd(time.Millisecond)

	if v := snapValue(t, reg, "parlog_runs_total"); v != 2 {
		t.Fatalf("runs = %v", v)
	}
	if v := snapValue(t, reg, "parlog_run_active"); v != 0 {
		t.Fatalf("run_active = %v", v)
	}
	var hist metrics.MetricSnapshot
	for _, s := range reg.Snapshot() {
		if s.Name == "parlog_bucket_load_tuples" {
			hist = s
		}
	}
	// Run 1 observes loads {4, 0}; run 2 observes cumulative {4, 4}: the
	// distribution reflects each run-end state without dropping buckets.
	if hist.Count != 4 {
		t.Fatalf("bucket load observations = %d", hist.Count)
	}
}

// TestMetricsSinkPlanCounters drives the PlanSink extension through the
// nil-safe package helpers (the path the engines use) and checks the three
// planner counters.
func TestMetricsSinkPlanCounters(t *testing.T) {
	reg := metrics.New()
	m := NewMetricsSink(reg)
	PlanCompiled(m, 0, "anc", 2, 1)
	PlanCompiled(m, 1, "anc", 0, 1)
	DemandRewrite(m, "anc(a, X)", 8, 3)
	// Non-PlanSink and nil sinks must be no-ops, not panics.
	PlanCompiled(nil, 0, "anc", 5, 5)
	DemandRewrite(NewCounting(), "g", 1, 1)

	if v := snapValue(t, reg, "parlog_plan_reordered_atoms_total"); v != 2 {
		t.Fatalf("reordered atoms = %v", v)
	}
	if v := snapValue(t, reg, "parlog_plan_pushdown_constraints_total"); v != 2 {
		t.Fatalf("pushdowns = %v", v)
	}
	if v := snapValue(t, reg, "parlog_plan_demand_rules_total"); v != 3 {
		t.Fatalf("demand rules = %v", v)
	}
}

func TestMetricsSinkSpanStream(t *testing.T) {
	reg := metrics.New()
	m := NewMetricsSink(reg)
	m.RunStart("dist", []int{0, 1})
	// MetricsSink is a plain EventSink; span helpers must no-op on it
	// without panicking, and fanning it out with a Recorder must still
	// deliver spans to the Recorder.
	rec := NewRecorder()
	sink := Fanout(m, rec)
	SpanSend(sink, 0, 1, "anc@ch", 3, 42, 0)
	SpanRecv(sink, 1, 0, "anc@ch", 3, 42, 0)
	ev := rec.Events()
	if len(ev) != 2 || ev[0].Kind != KindSpanSend || ev[1].Kind != KindSpanRecv || ev[0].Span != 42 {
		t.Fatalf("span events not delivered through fanout: %+v", ev)
	}
}

func TestMetricsSinkConcurrent(t *testing.T) {
	reg := metrics.New()
	m := NewMetricsSink(reg)
	procs := []int{0, 1, 2, 3}
	m.RunStart("dist", procs)
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.WorkerBusy(p)
				m.RuleFirings(p, "anc", 2, 1)
				m.MessageSent(p, (p+1)%4, "anc@ch", 3)
				m.MessageReceived(p, (p+3)%4, "anc@ch", 3, 1)
				m.IterationStart(p, i)
				m.IterationEnd(p, i, 1)
				m.WorkerIdle(p)
			}
		}(p)
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	m.RunEnd(time.Millisecond)
	if v := snapValue(t, reg, "parlog_tuples_sent_total"); v != 4*500*3 {
		t.Fatalf("lost sends: %v", v)
	}
	if v := snapValue(t, reg, "parlog_iterations_total"); v != 4*500 {
		t.Fatalf("lost iterations: %v", v)
	}
}
