package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	mkEv := func(kind string, tns int64, f func(*Event)) Event {
		e := Event{Kind: kind, TNs: tns}
		f(&e)
		return e
	}
	events := []Event{
		mkEv(KindRunStart, 0, func(e *Event) { e.Engine = "dist"; e.Procs = []int{0, 1} }),
		mkEv(KindBusy, 100, func(e *Event) { e.Proc = 0 }),
		mkEv(KindIterStart, 150, func(e *Event) { e.Proc = 0; e.Iter = 1 }),
		mkEv(KindSpanSend, 200, func(e *Event) { e.Proc = 0; e.Peer = 1; e.Pred = "anc@ch"; e.N = 4; e.Span = 0x10001 }),
		mkEv(KindIterEnd, 300, func(e *Event) { e.Proc = 0; e.Iter = 1; e.N = 4 }),
		mkEv(KindIdle, 400, func(e *Event) { e.Proc = 0 }),
		mkEv(KindSpanRecv, 500, func(e *Event) { e.Proc = 1; e.Peer = 0; e.Pred = "anc@ch"; e.N = 4; e.Span = 0x10001 }),
		mkEv(KindWorkerDead, 600, func(e *Event) { e.Proc = 1; e.Reason = "conn" }),
		mkEv(KindSpanReplay, 700, func(e *Event) { e.Bucket = 1; e.Peer = 0; e.Span = 0x10001 }),
		mkEv(KindBusy, 800, func(e *Event) { e.Proc = 0 }), // left open: closed at stream end
		mkEv(KindRunEnd, 900, func(e *Event) {}),
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	count := map[string]int{}
	var busyDur []float64
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		count[ph+"/"+name]++
		if ph == "X" && name == "busy" {
			d, _ := ev["dur"].(float64)
			busyDur = append(busyDur, d)
		}
		if name == "batch" {
			if id, _ := ev["id"].(string); id != "10001" {
				t.Fatalf("flow id = %q, want 10001", id)
			}
		}
	}
	// One closed busy slice (100→400 = 0.3µs·1e3) plus the dangling one
	// closed at stream end (800→900).
	if len(busyDur) != 2 {
		t.Fatalf("busy slices = %d, want 2", len(busyDur))
	}
	if count["X/iter 1"] != 1 {
		t.Fatalf("iteration slice missing: %v", count)
	}
	// Flow: send opens ("s"), recv terminates ("f"), replay re-opens ("s").
	if count["s/batch"] != 2 || count["f/batch"] != 1 {
		t.Fatalf("flow events: %v", count)
	}
	if count["i/worker dead"] != 1 {
		t.Fatalf("death marker missing: %v", count)
	}
}
