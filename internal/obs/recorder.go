package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one recorded engine event. Kind selects which of the optional
// fields are meaningful; TNs is nanoseconds since the recorder saw its
// first event (zeroed by Canonical).
type Event struct {
	Seq      int    `json:"seq"`
	TNs      int64  `json:"t_ns"`
	Kind     string `json:"kind"`
	Engine   string `json:"engine,omitempty"`
	Procs    []int  `json:"procs,omitempty"`
	Proc     int    `json:"proc,omitempty"`
	Peer     int    `json:"peer,omitempty"`
	Pred     string `json:"pred,omitempty"`
	Iter     int    `json:"iter,omitempty"`
	N        int64  `json:"n,omitempty"`
	Dup      int64  `json:"dup,omitempty"`
	Detector string `json:"detector,omitempty"`
	Quiesced bool   `json:"quiesced,omitempty"`
	WallNs   int64  `json:"wall_ns,omitempty"`
	Bucket   int    `json:"bucket,omitempty"`
	Reason   string `json:"reason,omitempty"`
	OK       bool   `json:"ok,omitempty"`
	Budget   int64  `json:"budget,omitempty"`
	// Span and Parent causally link distributed batch events: Span is the
	// batch's wire-envelope id, Parent the id of the batch whose
	// processing produced it (0 for initialization sends).
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Skew is the per-bucket load skew ratio that triggered a migration.
	Skew float64 `json:"skew,omitempty"`
}

// Event kinds emitted by the engines.
const (
	KindRunStart  = "run_start"
	KindIterStart = "iter_start"
	KindIterEnd   = "iter_end"
	KindFirings   = "firings"
	KindSend      = "send"
	KindRecv      = "recv"
	KindBusy      = "busy"
	KindIdle      = "idle"
	KindProbe     = "probe"
	KindRunEnd    = "run_end"

	// Fault-tolerance kinds (distributed engine only).
	KindHeartbeatMiss    = "heartbeat_miss"
	KindWorkerDead       = "worker_dead"
	KindBucketReassigned = "bucket_reassigned"
	KindReplayStart      = "replay_start"
	KindReplayEnd        = "replay_end"

	// Bounded-memory kinds (distributed engine only).
	KindCheckpointStart = "checkpoint_start"
	KindCheckpointEnd   = "checkpoint_end"
	KindLogTruncated    = "log_truncated"
	KindCreditStall     = "credit_stall"
	KindMemoryPressure  = "memory_pressure"
	KindBatchDropped    = "batch_dropped"

	// Adaptive load-balancing kinds (distributed engine only; see
	// RebalanceSink).
	KindMigrationStart    = "migration_start"
	KindMigrationEnd      = "migration_end"
	KindRebalanceRejected = "rebalance_rejected"

	// Causal-span kinds (distributed engine only; see SpanSink).
	KindSpanSend   = "span_send"
	KindSpanRecv   = "span_recv"
	KindSpanReplay = "span_replay"

	// Conformance-audit kind.
	KindNetworkViolation = "network_violation"
)

// String renders the event without its timestamp or sequence number — the
// schedule-independent form the golden trace test compares.
func (e Event) String() string {
	switch e.Kind {
	case KindRunStart:
		return fmt.Sprintf("run_start engine=%s procs=%v", e.Engine, e.Procs)
	case KindIterStart:
		return fmt.Sprintf("iter_start proc=%d iter=%d", e.Proc, e.Iter)
	case KindIterEnd:
		return fmt.Sprintf("iter_end proc=%d iter=%d delta=%d", e.Proc, e.Iter, e.N)
	case KindFirings:
		return fmt.Sprintf("firings proc=%d pred=%s n=%d dup=%d", e.Proc, e.Pred, e.N, e.Dup)
	case KindSend:
		return fmt.Sprintf("send from=%d to=%d pred=%s n=%d", e.Proc, e.Peer, e.Pred, e.N)
	case KindRecv:
		return fmt.Sprintf("recv at=%d from=%d pred=%s n=%d dup=%d", e.Proc, e.Peer, e.Pred, e.N, e.Dup)
	case KindBusy:
		return fmt.Sprintf("busy proc=%d", e.Proc)
	case KindIdle:
		return fmt.Sprintf("idle proc=%d", e.Proc)
	case KindProbe:
		return fmt.Sprintf("probe detector=%s n=%d quiesced=%v", e.Detector, e.Iter, e.Quiesced)
	case KindHeartbeatMiss:
		return fmt.Sprintf("heartbeat_miss proc=%d misses=%d", e.Proc, e.N)
	case KindWorkerDead:
		return fmt.Sprintf("worker_dead proc=%d reason=%s", e.Proc, e.Reason)
	case KindBucketReassigned:
		return fmt.Sprintf("bucket_reassigned bucket=%d from=%d to=%d", e.Bucket, e.Proc, e.Peer)
	case KindReplayStart:
		return fmt.Sprintf("replay_start bucket=%d to=%d", e.Bucket, e.Peer)
	case KindReplayEnd:
		return fmt.Sprintf("replay_end bucket=%d to=%d n=%d", e.Bucket, e.Peer, e.N)
	case KindCheckpointStart:
		return fmt.Sprintf("checkpoint_start bucket=%d proc=%d", e.Bucket, e.Proc)
	case KindCheckpointEnd:
		return fmt.Sprintf("checkpoint_end bucket=%d proc=%d tuples=%d ok=%v", e.Bucket, e.Proc, e.N, e.OK)
	case KindLogTruncated:
		return fmt.Sprintf("log_truncated bucket=%d n=%d", e.Bucket, e.N)
	case KindCreditStall:
		return fmt.Sprintf("credit_stall proc=%d bytes=%d", e.Proc, e.N)
	case KindMemoryPressure:
		return fmt.Sprintf("memory_pressure used=%d budget=%d", e.N, e.Budget)
	case KindBatchDropped:
		return fmt.Sprintf("batch_dropped from=%d bucket=%d n=%d", e.Proc, e.Bucket, e.N)
	case KindMigrationStart:
		return fmt.Sprintf("migration_start bucket=%d from=%d to=%d skew=%.2f", e.Bucket, e.Proc, e.Peer, e.Skew)
	case KindMigrationEnd:
		return fmt.Sprintf("migration_end bucket=%d from=%d to=%d n=%d", e.Bucket, e.Proc, e.Peer, e.N)
	case KindRebalanceRejected:
		return fmt.Sprintf("rebalance_rejected bucket=%d from=%d to=%d reason=%s", e.Bucket, e.Proc, e.Peer, e.Reason)
	case KindSpanSend:
		return fmt.Sprintf("span_send from=%d to=%d pred=%s n=%d span=%x parent=%x", e.Proc, e.Peer, e.Pred, e.N, e.Span, e.Parent)
	case KindSpanRecv:
		return fmt.Sprintf("span_recv at=%d from=%d pred=%s n=%d span=%x parent=%x", e.Proc, e.Peer, e.Pred, e.N, e.Span, e.Parent)
	case KindSpanReplay:
		return fmt.Sprintf("span_replay bucket=%d to=%d span=%x", e.Bucket, e.Peer, e.Span)
	case KindNetworkViolation:
		return fmt.Sprintf("network_violation from=%d to=%d tuples=%d", e.Proc, e.Peer, e.N)
	case KindRunEnd:
		return "run_end"
	}
	return e.Kind
}

// Recorder captures the full event stream in memory. Unlike Counting it
// takes a mutex per event, so it is meant for traces and debugging, not
// for overhead-sensitive measurement.
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	if r.start.IsZero() {
		r.start = time.Now()
	}
	e.Seq = len(r.events)
	e.TNs = time.Since(r.start).Nanoseconds()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *Recorder) RunStart(engine string, procs []int) {
	r.add(Event{Kind: KindRunStart, Engine: engine, Procs: append([]int(nil), procs...)})
}

func (r *Recorder) IterationStart(proc, iter int) {
	r.add(Event{Kind: KindIterStart, Proc: proc, Iter: iter})
}

func (r *Recorder) IterationEnd(proc, iter, delta int) {
	r.add(Event{Kind: KindIterEnd, Proc: proc, Iter: iter, N: int64(delta)})
}

func (r *Recorder) RuleFirings(proc int, pred string, firings, dup int64) {
	r.add(Event{Kind: KindFirings, Proc: proc, Pred: pred, N: firings, Dup: dup})
}

func (r *Recorder) MessageSent(from, to int, pred string, tuples int) {
	r.add(Event{Kind: KindSend, Proc: from, Peer: to, Pred: pred, N: int64(tuples)})
}

func (r *Recorder) MessageReceived(at, from int, pred string, tuples, dup int) {
	r.add(Event{Kind: KindRecv, Proc: at, Peer: from, Pred: pred, N: int64(tuples), Dup: int64(dup)})
}

func (r *Recorder) WorkerBusy(proc int) { r.add(Event{Kind: KindBusy, Proc: proc}) }
func (r *Recorder) WorkerIdle(proc int) { r.add(Event{Kind: KindIdle, Proc: proc}) }

func (r *Recorder) TermProbe(detector string, probe int, quiesced bool) {
	r.add(Event{Kind: KindProbe, Detector: detector, Iter: probe, Quiesced: quiesced})
}

func (r *Recorder) HeartbeatMiss(proc, misses int) {
	r.add(Event{Kind: KindHeartbeatMiss, Proc: proc, N: int64(misses)})
}

func (r *Recorder) WorkerDead(proc int, reason string) {
	r.add(Event{Kind: KindWorkerDead, Proc: proc, Reason: reason})
}

func (r *Recorder) BucketReassigned(bucket, fromProc, toProc int) {
	r.add(Event{Kind: KindBucketReassigned, Bucket: bucket, Proc: fromProc, Peer: toProc})
}

func (r *Recorder) ReplayStart(bucket, toProc int) {
	r.add(Event{Kind: KindReplayStart, Bucket: bucket, Peer: toProc})
}

func (r *Recorder) ReplayEnd(bucket, toProc, messages int) {
	r.add(Event{Kind: KindReplayEnd, Bucket: bucket, Peer: toProc, N: int64(messages)})
}

func (r *Recorder) CheckpointStart(bucket, proc int) {
	r.add(Event{Kind: KindCheckpointStart, Bucket: bucket, Proc: proc})
}

func (r *Recorder) CheckpointEnd(bucket, proc, tuples int, ok bool) {
	r.add(Event{Kind: KindCheckpointEnd, Bucket: bucket, Proc: proc, N: int64(tuples), OK: ok})
}

func (r *Recorder) LogTruncated(bucket, batches int) {
	r.add(Event{Kind: KindLogTruncated, Bucket: bucket, N: int64(batches)})
}

func (r *Recorder) CreditStall(proc int, bytes int64) {
	r.add(Event{Kind: KindCreditStall, Proc: proc, N: bytes})
}

func (r *Recorder) MemoryPressure(used, budget int64) {
	r.add(Event{Kind: KindMemoryPressure, N: used, Budget: budget})
}

func (r *Recorder) BatchDropped(fromProc, bucket, tuples int) {
	r.add(Event{Kind: KindBatchDropped, Proc: fromProc, Bucket: bucket, N: int64(tuples)})
}

func (r *Recorder) NetworkViolation(from, to int, tuples int64) {
	r.add(Event{Kind: KindNetworkViolation, Proc: from, Peer: to, N: tuples})
}

// The Recorder implements RebalanceSink: migration events appear inline in
// the stream, giving the Chrome trace exporter its migration slices.
func (r *Recorder) MigrationStart(bucket, fromProc, toProc int, skew float64) {
	r.add(Event{Kind: KindMigrationStart, Bucket: bucket, Proc: fromProc, Peer: toProc, Skew: skew})
}

func (r *Recorder) MigrationEnd(bucket, fromProc, toProc, replayed int) {
	r.add(Event{Kind: KindMigrationEnd, Bucket: bucket, Proc: fromProc, Peer: toProc, N: int64(replayed)})
}

func (r *Recorder) RebalanceRejected(bucket, fromProc, toProc int, reason string) {
	r.add(Event{Kind: KindRebalanceRejected, Bucket: bucket, Proc: fromProc, Peer: toProc, Reason: reason})
}

// The Recorder implements SpanSink: span events appear inline in the
// stream, giving the Chrome trace exporter its flow-event endpoints.
func (r *Recorder) SpanSend(proc, peer int, pred string, tuples int, span, parent uint64) {
	r.add(Event{Kind: KindSpanSend, Proc: proc, Peer: peer, Pred: pred, N: int64(tuples), Span: span, Parent: parent})
}

func (r *Recorder) SpanRecv(proc, peer int, pred string, tuples int, span, parent uint64) {
	r.add(Event{Kind: KindSpanRecv, Proc: proc, Peer: peer, Pred: pred, N: int64(tuples), Span: span, Parent: parent})
}

func (r *Recorder) SpanReplay(bucket, toProc int, span uint64) {
	r.add(Event{Kind: KindSpanReplay, Bucket: bucket, Peer: toProc, Span: span})
}

func (r *Recorder) RunEnd(wall time.Duration) {
	r.add(Event{Kind: KindRunEnd, WallNs: int64(wall)})
}

// Events returns a copy of the recorded stream.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Canonical returns the stream with every timing field zeroed, the form a
// deterministic scheduler reproduces exactly run-to-run.
func (r *Recorder) Canonical() []Event {
	ev := r.Events()
	for i := range ev {
		ev[i].TNs = 0
		ev[i].WallNs = 0
	}
	return ev
}

// CanonicalStrings renders Canonical() one event per line.
func (r *Recorder) CanonicalStrings() []string {
	ev := r.Canonical()
	out := make([]string, len(ev))
	for i, e := range ev {
		out[i] = e.String()
	}
	return out
}

// WriteJSON writes the recorded events as one indented JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Events())
}
