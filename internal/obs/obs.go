// Package obs is the engine-wide observability layer: a single EventSink
// interface that all three evaluation engines (sequential semi-naive,
// in-process parallel, distributed) report into, plus two built-in sinks —
// a lock-free counting sink that aggregates per-iteration delta sizes,
// per-edge tuple counts and per-worker busy/idle time, and a trace
// recorder that captures the full event stream for JSON export.
//
// The layer is zero-cost when disabled: engines hold a plain interface
// value and guard every emission with a nil check, so an unconfigured run
// performs no calls, no allocations and no atomic operations on behalf of
// observability.
package obs

import "time"

// EventSink receives the engine's execution events. Implementations must
// be safe for concurrent use: parallel and distributed workers call the
// per-proc methods from their own goroutines. A method is called with the
// paper-level processor id (the values of ProcSet.IDs, which need not be
// dense or start at zero); the sequential engine reports as processor 0.
//
// Sinks must not block: they sit on the engines' hot paths and anything
// slower than a few atomic updates will distort the timings they observe.
type EventSink interface {
	// RunStart opens a run (or one stratum of a stratified run) on the
	// named engine ("seminaive", "parallel", "lockstep" or "dist") over
	// the given processor ids.
	RunStart(engine string, procs []int)
	// IterationStart marks processor proc beginning semi-naive
	// iteration iter (1-based; 0 is the initialization pass).
	IterationStart(proc, iter int)
	// IterationEnd closes the iteration; delta is the number of new
	// tuples the processor derived in it.
	IterationEnd(proc, iter, delta int)
	// RuleFirings reports one rule's batch within an iteration: the
	// head predicate, successful instantiations, and how many of them
	// rederived an already-known tuple.
	RuleFirings(proc int, pred string, firings, dup int64)
	// MessageSent reports a batch of tuples leaving proc from for proc
	// to over channel t_{from,to}.
	MessageSent(from, to int, pred string, tuples int)
	// MessageReceived reports a batch arriving at proc at; dup counts
	// the tuples the receiver already knew.
	MessageReceived(at, from int, pred string, tuples, dup int)
	// WorkerBusy and WorkerIdle mark a processor's transitions between
	// evaluating and waiting for messages.
	WorkerBusy(proc int)
	WorkerIdle(proc int)
	// TermProbe reports one probe of the termination detector: the
	// detector name, a probe sequence number (-1 for a final summary
	// probe), and whether the system was found quiescent.
	TermProbe(detector string, probe int, quiesced bool)
	// HeartbeatMiss reports that processor proc has been silent for
	// misses consecutive heartbeat intervals without yet being declared
	// dead (distributed engine only).
	HeartbeatMiss(proc, misses int)
	// WorkerDead reports the coordinator declaring processor proc dead
	// (connection lost or liveness deadline exceeded).
	WorkerDead(proc int, reason string)
	// BucketReassigned reports hash bucket bucket moving from dead
	// processor fromProc to surviving processor toProc.
	BucketReassigned(bucket, fromProc, toProc int)
	// ReplayStart and ReplayEnd bracket the replay of a reassigned
	// bucket's message log to its new owner; messages is the number of
	// logged batches replayed.
	ReplayStart(bucket, toProc int)
	ReplayEnd(bucket, toProc, messages int)
	// CheckpointStart reports the coordinator requesting a checkpoint of
	// hash bucket bucket from processor proc, its current owner.
	CheckpointStart(bucket, proc int)
	// CheckpointEnd reports the checkpoint reply arriving: tuples is the
	// snapshot's derived-tuple count; ok is false when the reply was
	// rejected (checksum mismatch or an injected drop) and the send log
	// was therefore not truncated.
	CheckpointEnd(bucket, proc, tuples int, ok bool)
	// LogTruncated reports batches logged batches of bucket bucket being
	// dropped because an accepted checkpoint now covers them.
	LogTruncated(bucket, batches int)
	// CreditStall reports processor proc blocking on the credit gate
	// while trying to send a data batch of the given estimated size —
	// the backpressure signal of the bounded-memory transport.
	CreditStall(proc int, bytes int64)
	// MemoryPressure reports the coordinator's tracked memory (send
	// logs + stored checkpoints + queued batches) exceeding its budget;
	// the runtime responds by forcing an early checkpoint cycle.
	MemoryPressure(used, budget int64)
	// BatchDropped reports a data batch addressed to an out-of-range
	// bucket being discarded by the router instead of delivered.
	BatchDropped(fromProc, bucket, tuples int)
	// NetworkViolation reports the conformance auditor finding traffic on
	// channel t_{from,to} that the derived minimal network graph
	// (Section 5) predicts can never carry a tuple — a correctness
	// tripwire for the hash-partitioning layer. tuples is the observed
	// volume on the offending edge.
	NetworkViolation(from, to int, tuples int64)
	// RunEnd closes the run opened by the matching RunStart.
	RunEnd(wall time.Duration)
}

// SpanSink is an optional extension of EventSink for causally-linked
// spans: distributed data batches carry a span id (and the id of the span
// whose processing produced them) through the wire envelope, so sends,
// receives and post-failure replays of the same batch can be stitched into
// one causal chain. Sinks that don't implement it simply miss the span
// stream; emitters must type-assert (or use the Span* helpers) so plain
// EventSinks keep working unchanged.
type SpanSink interface {
	// SpanSend reports a data batch leaving proc for peer: span is the
	// batch's fresh id, parent the id of the received batch whose
	// processing derived it (0 for initialization sends).
	SpanSend(proc, peer int, pred string, tuples int, span, parent uint64)
	// SpanRecv reports the batch arriving at proc from peer.
	SpanRecv(proc, peer int, pred string, tuples int, span, parent uint64)
	// SpanReplay reports the coordinator re-delivering a logged batch to
	// bucket's new owner toProc during recovery; span is the original
	// batch's id, preserved verbatim through the log.
	SpanReplay(bucket, toProc int, span uint64)
}

// SpanSend forwards to sink if it implements SpanSink; nil-safe.
func SpanSend(sink EventSink, proc, peer int, pred string, tuples int, span, parent uint64) {
	if ss, ok := sink.(SpanSink); ok {
		ss.SpanSend(proc, peer, pred, tuples, span, parent)
	}
}

// SpanRecv forwards to sink if it implements SpanSink; nil-safe.
func SpanRecv(sink EventSink, proc, peer int, pred string, tuples int, span, parent uint64) {
	if ss, ok := sink.(SpanSink); ok {
		ss.SpanRecv(proc, peer, pred, tuples, span, parent)
	}
}

// SpanReplay forwards to sink if it implements SpanSink; nil-safe.
func SpanReplay(sink EventSink, bucket, toProc int, span uint64) {
	if ss, ok := sink.(SpanSink); ok {
		ss.SpanReplay(bucket, toProc, span)
	}
}

// PlanSink is an optional extension of EventSink for the query planner's
// compile-time decisions: join-order reorderings, constraint pushdowns and
// demand (magic-sets) rewrites. Like SpanSink, sinks that don't implement
// it simply miss the plan stream, so golden recordings of the base event
// stream are unaffected; emitters use the nil-safe helpers below.
type PlanSink interface {
	// PlanCompiled reports one compiled rule plan for the given head
	// predicate: moved counts body atoms executing away from their textual
	// position, pushdowns counts constraints checked before the final join
	// level.
	PlanCompiled(proc int, pred string, moved, pushdowns int)
	// DemandRewrite reports a magic-sets rewrite of a program for a goal:
	// rules is the rewritten program's rule count, magic how many of them
	// are demand (magic/seed) rules.
	DemandRewrite(goal string, rules, magic int)
}

// PlanCompiled forwards to sink if it implements PlanSink; nil-safe.
func PlanCompiled(sink EventSink, proc int, pred string, moved, pushdowns int) {
	if ps, ok := sink.(PlanSink); ok {
		ps.PlanCompiled(proc, pred, moved, pushdowns)
	}
}

// DemandRewrite forwards to sink if it implements PlanSink; nil-safe.
func DemandRewrite(sink EventSink, goal string, rules, magic int) {
	if ps, ok := sink.(PlanSink); ok {
		ps.DemandRewrite(goal, rules, magic)
	}
}

// IVMSink is an optional extension of EventSink for incremental view
// maintenance: batches applied to a live View, the DRed overdelete/rederive
// work they caused, and snapshot publication. Like SpanSink and PlanSink,
// sinks that don't implement it simply miss the stream; emitters use the
// nil-safe helpers below.
type IVMSink interface {
	// ApplyStart reports a maintenance batch beginning: the number of EDB
	// tuples to insert and delete.
	ApplyStart(inserts, deletes int)
	// ApplyEnd reports the batch absorbed: net live-set growth/shrink,
	// DRed overdeletions and rederivations, the derived work (successful
	// ground substitutions) the maintenance passes enumerated, and wall
	// time. err is non-nil when the batch failed.
	ApplyEnd(inserted, deleted, overdeleted, rederived int, firings int64, wall time.Duration, err error)
	// SnapshotTaken reports an immutable snapshot being published: the
	// view epoch it pins and its live tuple count.
	SnapshotTaken(epoch uint64, tuples int)
}

// ApplyStart forwards to sink if it implements IVMSink; nil-safe.
func ApplyStart(sink EventSink, inserts, deletes int) {
	if is, ok := sink.(IVMSink); ok {
		is.ApplyStart(inserts, deletes)
	}
}

// ApplyEnd forwards to sink if it implements IVMSink; nil-safe.
func ApplyEnd(sink EventSink, inserted, deleted, overdeleted, rederived int, firings int64, wall time.Duration, err error) {
	if is, ok := sink.(IVMSink); ok {
		is.ApplyEnd(inserted, deleted, overdeleted, rederived, firings, wall, err)
	}
}

// SnapshotTaken forwards to sink if it implements IVMSink; nil-safe.
func SnapshotTaken(sink EventSink, epoch uint64, tuples int) {
	if is, ok := sink.(IVMSink); ok {
		is.SnapshotTaken(epoch, tuples)
	}
}

// RebalanceSink is an optional extension of EventSink for the adaptive
// load balancer: skew-triggered bucket migrations between live workers and
// transferability rejections. Like the other optional extensions, sinks
// that don't implement it simply miss the stream; emitters use the
// nil-safe helpers below.
type RebalanceSink interface {
	// MigrationStart reports the coordinator beginning a live migration of
	// bucket from worker fromProc to worker toProc; skew is the per-bucket
	// load skew ratio (max/mean over the sampling window) that triggered
	// it.
	MigrationStart(bucket, fromProc, toProc int, skew float64)
	// MigrationEnd closes the migration: replayed is the number of logged
	// batches re-delivered to the new owner.
	MigrationEnd(bucket, fromProc, toProc, replayed int)
	// RebalanceRejected reports a candidate repartitioning failing the
	// transferability check and being discarded instead of applied.
	RebalanceRejected(bucket, fromProc, toProc int, reason string)
}

// MigrationStart forwards to sink if it implements RebalanceSink; nil-safe.
func MigrationStart(sink EventSink, bucket, fromProc, toProc int, skew float64) {
	if rs, ok := sink.(RebalanceSink); ok {
		rs.MigrationStart(bucket, fromProc, toProc, skew)
	}
}

// MigrationEnd forwards to sink if it implements RebalanceSink; nil-safe.
func MigrationEnd(sink EventSink, bucket, fromProc, toProc, replayed int) {
	if rs, ok := sink.(RebalanceSink); ok {
		rs.MigrationEnd(bucket, fromProc, toProc, replayed)
	}
}

// RebalanceRejected forwards to sink if it implements RebalanceSink; nil-safe.
func RebalanceRejected(sink EventSink, bucket, fromProc, toProc int, reason string) {
	if rs, ok := sink.(RebalanceSink); ok {
		rs.RebalanceRejected(bucket, fromProc, toProc, reason)
	}
}

// StoreSink is an optional extension of EventSink for the durable
// storage tier: WAL appends, segment compactions and recovery. Like the
// other optional extensions, sinks that don't implement it simply miss
// the stream; emitters use the nil-safe helpers below.
type StoreSink interface {
	// WALAppend reports one record appended to the write-ahead log: its
	// consumer-assigned kind, framed byte size and whether this append
	// forced an fsync.
	WALAppend(kind byte, bytes int, synced bool)
	// SegmentWrite reports one compaction: the epoch the new segment
	// pins, its byte size and the tuples it snapshots.
	SegmentWrite(epoch uint64, bytes int64, tuples int)
	// StoreRecovery reports one recovery at open: the segment epoch
	// restored (0 if none), the WAL apply records replayed on top,
	// checksum-failed records skipped past, whether a torn tail was
	// dropped, and whether the directory recorded a clean shutdown.
	StoreRecovery(segEpoch uint64, walApplies, skipped int, torn, clean bool)
}

// WALAppend forwards to sink if it implements StoreSink; nil-safe.
func WALAppend(sink EventSink, kind byte, bytes int, synced bool) {
	if ss, ok := sink.(StoreSink); ok {
		ss.WALAppend(kind, bytes, synced)
	}
}

// SegmentWrite forwards to sink if it implements StoreSink; nil-safe.
func SegmentWrite(sink EventSink, epoch uint64, bytes int64, tuples int) {
	if ss, ok := sink.(StoreSink); ok {
		ss.SegmentWrite(epoch, bytes, tuples)
	}
}

// StoreRecovery forwards to sink if it implements StoreSink; nil-safe.
func StoreRecovery(sink EventSink, segEpoch uint64, walApplies, skipped int, torn, clean bool) {
	if ss, ok := sink.(StoreSink); ok {
		ss.StoreRecovery(segEpoch, walApplies, skipped, torn, clean)
	}
}

// fanout broadcasts every event to a fixed list of sinks.
type fanout struct {
	sinks []EventSink
}

// Fanout returns a sink that forwards every event to each non-nil sink in
// order. Nil arguments are dropped; zero or one live sink collapses to nil
// or the sink itself, so engines keep their single nil check.
func Fanout(sinks ...EventSink) EventSink {
	live := make([]EventSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &fanout{sinks: live}
}

func (f *fanout) RunStart(engine string, procs []int) {
	for _, s := range f.sinks {
		s.RunStart(engine, procs)
	}
}

func (f *fanout) IterationStart(proc, iter int) {
	for _, s := range f.sinks {
		s.IterationStart(proc, iter)
	}
}

func (f *fanout) IterationEnd(proc, iter, delta int) {
	for _, s := range f.sinks {
		s.IterationEnd(proc, iter, delta)
	}
}

func (f *fanout) RuleFirings(proc int, pred string, firings, dup int64) {
	for _, s := range f.sinks {
		s.RuleFirings(proc, pred, firings, dup)
	}
}

func (f *fanout) MessageSent(from, to int, pred string, tuples int) {
	for _, s := range f.sinks {
		s.MessageSent(from, to, pred, tuples)
	}
}

func (f *fanout) MessageReceived(at, from int, pred string, tuples, dup int) {
	for _, s := range f.sinks {
		s.MessageReceived(at, from, pred, tuples, dup)
	}
}

func (f *fanout) WorkerBusy(proc int) {
	for _, s := range f.sinks {
		s.WorkerBusy(proc)
	}
}

func (f *fanout) WorkerIdle(proc int) {
	for _, s := range f.sinks {
		s.WorkerIdle(proc)
	}
}

func (f *fanout) TermProbe(detector string, probe int, quiesced bool) {
	for _, s := range f.sinks {
		s.TermProbe(detector, probe, quiesced)
	}
}

func (f *fanout) HeartbeatMiss(proc, misses int) {
	for _, s := range f.sinks {
		s.HeartbeatMiss(proc, misses)
	}
}

func (f *fanout) WorkerDead(proc int, reason string) {
	for _, s := range f.sinks {
		s.WorkerDead(proc, reason)
	}
}

func (f *fanout) BucketReassigned(bucket, fromProc, toProc int) {
	for _, s := range f.sinks {
		s.BucketReassigned(bucket, fromProc, toProc)
	}
}

func (f *fanout) ReplayStart(bucket, toProc int) {
	for _, s := range f.sinks {
		s.ReplayStart(bucket, toProc)
	}
}

func (f *fanout) ReplayEnd(bucket, toProc, messages int) {
	for _, s := range f.sinks {
		s.ReplayEnd(bucket, toProc, messages)
	}
}

func (f *fanout) CheckpointStart(bucket, proc int) {
	for _, s := range f.sinks {
		s.CheckpointStart(bucket, proc)
	}
}

func (f *fanout) CheckpointEnd(bucket, proc, tuples int, ok bool) {
	for _, s := range f.sinks {
		s.CheckpointEnd(bucket, proc, tuples, ok)
	}
}

func (f *fanout) LogTruncated(bucket, batches int) {
	for _, s := range f.sinks {
		s.LogTruncated(bucket, batches)
	}
}

func (f *fanout) CreditStall(proc int, bytes int64) {
	for _, s := range f.sinks {
		s.CreditStall(proc, bytes)
	}
}

func (f *fanout) MemoryPressure(used, budget int64) {
	for _, s := range f.sinks {
		s.MemoryPressure(used, budget)
	}
}

func (f *fanout) BatchDropped(fromProc, bucket, tuples int) {
	for _, s := range f.sinks {
		s.BatchDropped(fromProc, bucket, tuples)
	}
}

func (f *fanout) NetworkViolation(from, to int, tuples int64) {
	for _, s := range f.sinks {
		s.NetworkViolation(from, to, tuples)
	}
}

// The fanout forwards span events to whichever of its sinks implement
// SpanSink, so a Fanout(recorder, counting) still records spans.
func (f *fanout) SpanSend(proc, peer int, pred string, tuples int, span, parent uint64) {
	for _, s := range f.sinks {
		SpanSend(s, proc, peer, pred, tuples, span, parent)
	}
}

func (f *fanout) SpanRecv(proc, peer int, pred string, tuples int, span, parent uint64) {
	for _, s := range f.sinks {
		SpanRecv(s, proc, peer, pred, tuples, span, parent)
	}
}

func (f *fanout) SpanReplay(bucket, toProc int, span uint64) {
	for _, s := range f.sinks {
		SpanReplay(s, bucket, toProc, span)
	}
}

// The fanout forwards IVM events to whichever of its sinks implement
// IVMSink.
func (f *fanout) ApplyStart(inserts, deletes int) {
	for _, s := range f.sinks {
		ApplyStart(s, inserts, deletes)
	}
}

func (f *fanout) ApplyEnd(inserted, deleted, overdeleted, rederived int, firings int64, wall time.Duration, err error) {
	for _, s := range f.sinks {
		ApplyEnd(s, inserted, deleted, overdeleted, rederived, firings, wall, err)
	}
}

func (f *fanout) SnapshotTaken(epoch uint64, tuples int) {
	for _, s := range f.sinks {
		SnapshotTaken(s, epoch, tuples)
	}
}

// The fanout forwards rebalance events to whichever of its sinks
// implement RebalanceSink.
func (f *fanout) MigrationStart(bucket, fromProc, toProc int, skew float64) {
	for _, s := range f.sinks {
		MigrationStart(s, bucket, fromProc, toProc, skew)
	}
}

func (f *fanout) MigrationEnd(bucket, fromProc, toProc, replayed int) {
	for _, s := range f.sinks {
		MigrationEnd(s, bucket, fromProc, toProc, replayed)
	}
}

func (f *fanout) RebalanceRejected(bucket, fromProc, toProc int, reason string) {
	for _, s := range f.sinks {
		RebalanceRejected(s, bucket, fromProc, toProc, reason)
	}
}

// The fanout forwards durable-store events to whichever of its sinks
// implement StoreSink.
func (f *fanout) WALAppend(kind byte, bytes int, synced bool) {
	for _, s := range f.sinks {
		WALAppend(s, kind, bytes, synced)
	}
}

func (f *fanout) SegmentWrite(epoch uint64, bytes int64, tuples int) {
	for _, s := range f.sinks {
		SegmentWrite(s, epoch, bytes, tuples)
	}
}

func (f *fanout) StoreRecovery(segEpoch uint64, walApplies, skipped int, torn, clean bool) {
	for _, s := range f.sinks {
		StoreRecovery(s, segEpoch, walApplies, skipped, torn, clean)
	}
}

// The fanout likewise forwards plan events to whichever of its sinks
// implement PlanSink.
func (f *fanout) PlanCompiled(proc int, pred string, moved, pushdowns int) {
	for _, s := range f.sinks {
		PlanCompiled(s, proc, pred, moved, pushdowns)
	}
}

func (f *fanout) DemandRewrite(goal string, rules, magic int) {
	for _, s := range f.sinks {
		DemandRewrite(s, goal, rules, magic)
	}
}

func (f *fanout) RunEnd(wall time.Duration) {
	for _, s := range f.sinks {
		s.RunEnd(wall)
	}
}
