// Package analysis provides the static analyses of Section 2 of the paper:
// the derives relation between predicates, recursion and linearity tests,
// safety checking, and extraction of the canonical linear-sirup form
//
//	e:  t(Z̄) :- s(Z̄)
//	r:  t(X̄) :- t(Ȳ), b1, …, bk
//
// on which Sections 3–6 operate.
package analysis

import (
	"errors"
	"fmt"
	"sort"

	"parlog/internal/ast"
)

// ErrNotLinearSirup is wrapped by every ExtractSirup rejection, so callers
// can distinguish "this program is outside the sirup class" from other
// failures with errors.Is.
var ErrNotLinearSirup = errors.New("not a linear sirup")

// notSirup builds an ExtractSirup rejection wrapping ErrNotLinearSirup.
func notSirup(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrNotLinearSirup)...)
}

// Graph is the predicate dependency graph: an edge q → r means q occurs in
// the body of a rule whose head is r ("q derives r").
type Graph struct {
	// Succ maps each predicate to the sorted set of predicates it derives.
	Succ map[string][]string
}

// Dependencies builds the dependency graph of prog (facts contribute no
// edges).
func Dependencies(prog *ast.Program) *Graph {
	succ := make(map[string]map[string]bool)
	ensure := func(p string) {
		if succ[p] == nil {
			succ[p] = make(map[string]bool)
		}
	}
	for _, r := range prog.Rules {
		if r.IsFact() {
			continue
		}
		ensure(r.Head.Pred)
		for _, a := range r.Body {
			ensure(a.Pred)
			succ[a.Pred][r.Head.Pred] = true
		}
		// Negated atoms are dependencies too: the negated predicate must be
		// complete before the head's stratum runs.
		for _, a := range r.Negated {
			ensure(a.Pred)
			succ[a.Pred][r.Head.Pred] = true
		}
	}
	g := &Graph{Succ: make(map[string][]string, len(succ))}
	for p, set := range succ {
		out := make([]string, 0, len(set))
		for q := range set {
			out = append(out, q)
		}
		sort.Strings(out)
		g.Succ[p] = out
	}
	return g
}

// Derives reports whether q transitively derives r (one or more steps).
func (g *Graph) Derives(q, r string) bool {
	seen := map[string]bool{}
	stack := append([]string(nil), g.Succ[q]...)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p == r {
			return true
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		stack = append(stack, g.Succ[p]...)
	}
	return false
}

// SCCs returns the strongly connected components of the graph in evaluation
// order: if q derives r (q's tuples feed r's rules), q's component appears
// no later than r's. Each component is sorted internally. Tarjan's
// algorithm, iterative to survive deep chains.
func (g *Graph) SCCs() [][]string {
	preds := make([]string, 0, len(g.Succ))
	for p := range g.Succ {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		succ []string
		i    int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{node: root, succ: g.Succ[root]}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succ: g.Succ[w]})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop the frame.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Strings(comp)
				sccs = append(sccs, comp)
			}
		}
	}
	for _, p := range preds {
		if _, seen := index[p]; !seen {
			visit(p)
		}
	}
	// Tarjan emits sinks first (successors before the nodes that feed them);
	// reverse to obtain dependency-first evaluation order.
	for i, j := 0, len(sccs)-1; i < j; i, j = i+1, j-1 {
		sccs[i], sccs[j] = sccs[j], sccs[i]
	}
	return sccs
}

// SameSCC returns a lookup telling whether two predicates are mutually
// recursive (in the same SCC of size > 1, or a pred with a self-derivation).
func (g *Graph) SameSCC() func(p, q string) bool {
	comp := make(map[string]int)
	for i, scc := range g.SCCs() {
		for _, p := range scc {
			comp[p] = i
		}
	}
	return func(p, q string) bool {
		cp, okp := comp[p]
		cq, okq := comp[q]
		return okp && okq && cp == cq
	}
}

// IsRecursiveRule reports whether r is recursive in prog: the head predicate
// transitively derives some predicate in r's body (Section 2). Equivalently,
// firing r can feed its own body.
func IsRecursiveRule(prog *ast.Program, r ast.Rule) bool {
	g := Dependencies(prog)
	for _, a := range r.Body {
		if a.Pred == r.Head.Pred || g.Derives(r.Head.Pred, a.Pred) {
			return true
		}
	}
	return false
}

// RecursiveAtoms returns the indexes of r's body atoms whose predicate is
// mutually recursive with the head (including direct self-recursion).
func RecursiveAtoms(prog *ast.Program, r ast.Rule) []int {
	g := Dependencies(prog)
	same := g.SameSCC()
	var out []int
	for i, a := range r.Body {
		if a.Pred == r.Head.Pred || (same(a.Pred, r.Head.Pred) && g.Derives(r.Head.Pred, a.Pred)) {
			out = append(out, i)
		}
	}
	return out
}

// Stratify verifies that negation is stratified — no predicate is negated
// inside its own recursive component — and returns the strongly connected
// components in evaluation order. Pure-Datalog programs always stratify.
func Stratify(prog *ast.Program) ([][]string, error) {
	g := Dependencies(prog)
	sccs := g.SCCs()
	comp := make(map[string]int)
	for i, scc := range sccs {
		for _, p := range scc {
			comp[p] = i
		}
	}
	for _, r := range prog.Rules {
		for _, a := range r.Negated {
			if comp[a.Pred] == comp[r.Head.Pred] {
				return nil, fmt.Errorf("analysis: not stratified: %s is negated within its own recursive component (rule %s)",
					a.Pred, prog.FormatRule(r))
			}
		}
	}
	return sccs, nil
}

// Strata assigns each predicate a stratum number under stratified-negation
// semantics: positive dependencies keep predicates in the same (or lower)
// stratum, while a negated dependency forces the head strictly higher. The
// error reports non-stratified programs. Predicates of stratum s can be
// evaluated once strata < s are complete — which is how the parallel driver
// runs negation programs: one parallel phase per stratum.
func Strata(prog *ast.Program) (map[string]int, error) {
	sccs, err := Stratify(prog)
	if err != nil {
		return nil, err
	}
	comp := make(map[string]int)
	for i, scc := range sccs {
		for _, p := range scc {
			comp[p] = i
		}
	}
	// Process components in evaluation order: every dependency's component
	// is finalized before the components it feeds.
	sccStratum := make([]int, len(sccs))
	bump := func(dst, min int) {
		if sccStratum[dst] < min {
			sccStratum[dst] = min
		}
	}
	for idx := range sccs {
		for _, r := range prog.Rules {
			if r.IsFact() || comp[r.Head.Pred] != idx {
				continue
			}
			for _, a := range r.Body {
				bump(idx, sccStratum[comp[a.Pred]])
			}
			for _, a := range r.Negated {
				bump(idx, sccStratum[comp[a.Pred]]+1)
			}
		}
	}
	out := make(map[string]int, len(comp))
	for p, c := range comp {
		out[p] = sccStratum[c]
	}
	return out, nil
}

// HasNegation reports whether any rule uses a negated atom.
func HasNegation(prog *ast.Program) bool {
	for _, r := range prog.Rules {
		if len(r.Negated) > 0 {
			return true
		}
	}
	return false
}

// CheckSafety returns an error naming the first unsafe rule, if any.
func CheckSafety(prog *ast.Program) error {
	for i, r := range prog.Rules {
		if r.IsFact() {
			continue
		}
		if !r.IsSafe() {
			return fmt.Errorf("analysis: rule %d is unsafe: %s", i, prog.FormatRule(r))
		}
	}
	return nil
}

// Sirup is the canonical form of a linear sirup (Section 2):
//
//	Exit: t(Z̄) :- s(Z̄)            (s base)
//	Rec:  t(X̄) :- t(Ȳ), b1 … bk   (b_i base)
type Sirup struct {
	Program *ast.Program
	// T is the derived predicate symbol and S the exit rule's base predicate.
	T, S string
	// Exit and Rec are the two rules (clones; mutating them does not affect
	// the program).
	Exit, Rec ast.Rule
	// RecAtom is the index in Rec.Body of the unique recursive t-atom.
	RecAtom int
	// HeadVars (X̄) are the head argument variables of the recursive rule,
	// BodyVars (Ȳ) the arguments of the recursive body atom, ExitVars (Z̄)
	// the head argument variables of the exit rule.
	HeadVars, BodyVars, ExitVars []string
	// BaseAtoms are the non-recursive atoms b1 … bk of Rec.
	BaseAtoms []ast.Atom
}

// ExtractSirup verifies that prog (ignoring facts) is a linear sirup in
// canonical form and returns its decomposition. The exit rule may have any
// non-empty base-predicate body (the paper's s(Z̄) is the common case).
func ExtractSirup(prog *ast.Program) (*Sirup, error) {
	rules, _ := prog.FactTuples()
	if len(rules) != 2 {
		return nil, notSirup("analysis: a sirup has exactly 2 rules, found %d", len(rules))
	}
	if err := CheckSafety(prog); err != nil {
		return nil, err
	}
	var exit, rec *ast.Rule
	for i := range rules {
		r := &rules[i]
		recursive := false
		for _, a := range r.Body {
			if a.Pred == r.Head.Pred {
				recursive = true
			}
		}
		if recursive {
			if rec != nil {
				return nil, notSirup("analysis: more than one recursive rule")
			}
			rec = r
		} else {
			if exit != nil {
				return nil, notSirup("analysis: more than one exit rule")
			}
			exit = r
		}
	}
	if exit == nil || rec == nil {
		return nil, notSirup("analysis: need one exit and one recursive rule")
	}
	if exit.Head.Pred != rec.Head.Pred {
		return nil, notSirup("analysis: exit and recursive rules define different predicates (%s vs %s)",
			exit.Head.Pred, rec.Head.Pred)
	}
	t := rec.Head.Pred
	// The recursive rule must be linear: exactly one t-atom in the body.
	recIdx := -1
	for i, a := range rec.Body {
		if a.Pred == t {
			if recIdx >= 0 {
				return nil, notSirup("analysis: recursive rule is not linear (two %s-atoms)", t)
			}
			recIdx = i
		}
	}
	if len(exit.Negated) > 0 || len(rec.Negated) > 0 {
		return nil, notSirup("analysis: sirup rules must be negation-free (use the general stratified driver)")
	}
	// Exit body must not mention t and should be base-only.
	for _, a := range exit.Body {
		if a.Pred == t {
			return nil, notSirup("analysis: exit rule mentions %s", t)
		}
	}
	if len(exit.Body) == 0 {
		return nil, notSirup("analysis: exit rule has no body")
	}

	varsOf := func(a ast.Atom, what string) ([]string, error) {
		out := make([]string, len(a.Args))
		for i, tm := range a.Args {
			if !tm.IsVar() {
				return nil, notSirup("analysis: %s has non-variable argument %d", what, i)
			}
			out[i] = tm.VarName
		}
		return out, nil
	}
	headVars, err := varsOf(rec.Head, "recursive rule head")
	if err != nil {
		return nil, err
	}
	bodyVars, err := varsOf(rec.Body[recIdx], "recursive body atom")
	if err != nil {
		return nil, err
	}
	exitVars, err := varsOf(exit.Head, "exit rule head")
	if err != nil {
		return nil, err
	}

	var baseAtoms []ast.Atom
	for i, a := range rec.Body {
		if i != recIdx {
			baseAtoms = append(baseAtoms, a.Clone())
		}
	}
	return &Sirup{
		Program:   prog,
		T:         t,
		S:         exit.Body[0].Pred,
		Exit:      exit.Clone(),
		Rec:       rec.Clone(),
		RecAtom:   recIdx,
		HeadVars:  headVars,
		BodyVars:  bodyVars,
		ExitVars:  exitVars,
		BaseAtoms: baseAtoms,
	}, nil
}
