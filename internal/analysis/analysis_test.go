package analysis

import (
	"strings"
	"testing"

	"parlog/internal/parser"
)

const ancestorSrc = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`

const nonlinearSrc = `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), anc(Z, Y).
`

const mutualSrc = `
even(X) :- zero(X).
even(Y) :- succ(X, Y), odd(X).
odd(Y) :- succ(X, Y), even(X).
`

func TestDependencies(t *testing.T) {
	g := Dependencies(parser.MustParse(ancestorSrc))
	if !g.Derives("par", "anc") {
		t.Error("par should derive anc")
	}
	if !g.Derives("anc", "anc") {
		t.Error("anc should transitively derive itself")
	}
	if g.Derives("anc", "par") {
		t.Error("anc must not derive par")
	}
}

func TestSCCs(t *testing.T) {
	g := Dependencies(parser.MustParse(mutualSrc))
	sccs := g.SCCs()
	// even and odd are mutually recursive: one SCC of size 2.
	var big []string
	for _, s := range sccs {
		if len(s) > 1 {
			if big != nil {
				t.Fatalf("more than one nontrivial SCC: %v", sccs)
			}
			big = s
		}
	}
	if len(big) != 2 || big[0] != "even" || big[1] != "odd" {
		t.Errorf("nontrivial SCC = %v, want [even odd]", big)
	}
	same := g.SameSCC()
	if !same("even", "odd") {
		t.Error("SameSCC(even, odd) = false")
	}
	if same("even", "succ") {
		t.Error("SameSCC(even, succ) = true")
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	g := Dependencies(parser.MustParse(`
p(X) :- q(X).
q(X) :- r(X).
`))
	sccs := g.SCCs()
	pos := map[string]int{}
	for i, s := range sccs {
		for _, p := range s {
			pos[p] = i
		}
	}
	// r derives q derives p; callees (r) must come before callers (p).
	if !(pos["r"] < pos["q"] && pos["q"] < pos["p"]) {
		t.Errorf("SCC order = %v", sccs)
	}
}

func TestSCCLongChainNoOverflow(t *testing.T) {
	var b strings.Builder
	b.WriteString("p0(X) :- base(X).\n")
	for i := 1; i < 20000; i++ {
		b.WriteString("p")
		b.WriteString(itoa(i))
		b.WriteString("(X) :- p")
		b.WriteString(itoa(i - 1))
		b.WriteString("(X).\n")
	}
	g := Dependencies(parser.MustParse(b.String()))
	sccs := g.SCCs()
	if len(sccs) != 20001 { // base + 20000 preds
		t.Errorf("SCC count = %d", len(sccs))
	}
}

func itoa(n int) string {
	var digits []byte
	if n == 0 {
		return "0"
	}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestIsRecursiveRule(t *testing.T) {
	prog := parser.MustParse(ancestorSrc)
	if IsRecursiveRule(prog, prog.Rules[0]) {
		t.Error("exit rule reported recursive")
	}
	if !IsRecursiveRule(prog, prog.Rules[1]) {
		t.Error("recursive rule not reported recursive")
	}
	// Mutual recursion: both even and odd rules are recursive.
	mp := parser.MustParse(mutualSrc)
	if !IsRecursiveRule(mp, mp.Rules[1]) || !IsRecursiveRule(mp, mp.Rules[2]) {
		t.Error("mutually recursive rules not reported recursive")
	}
	if IsRecursiveRule(mp, mp.Rules[0]) {
		t.Error("base case reported recursive")
	}
}

func TestRecursiveAtoms(t *testing.T) {
	prog := parser.MustParse(nonlinearSrc)
	idxs := RecursiveAtoms(prog, prog.Rules[1])
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 1 {
		t.Errorf("RecursiveAtoms = %v, want [0 1]", idxs)
	}
	mp := parser.MustParse(mutualSrc)
	idxs = RecursiveAtoms(mp, mp.Rules[1]) // even(Y) :- succ(X,Y), odd(X)
	if len(idxs) != 1 || idxs[0] != 1 {
		t.Errorf("RecursiveAtoms(mutual even rule) = %v, want [1]", idxs)
	}
}

func TestExtractSirupAncestor(t *testing.T) {
	s, err := ExtractSirup(parser.MustParse(ancestorSrc))
	if err != nil {
		t.Fatal(err)
	}
	if s.T != "anc" || s.S != "par" {
		t.Errorf("T=%s S=%s", s.T, s.S)
	}
	if s.RecAtom != 1 {
		t.Errorf("RecAtom = %d, want 1", s.RecAtom)
	}
	if got := strings.Join(s.HeadVars, ","); got != "X,Y" {
		t.Errorf("HeadVars = %v", s.HeadVars)
	}
	if got := strings.Join(s.BodyVars, ","); got != "Z,Y" {
		t.Errorf("BodyVars = %v", s.BodyVars)
	}
	if got := strings.Join(s.ExitVars, ","); got != "X,Y" {
		t.Errorf("ExitVars = %v", s.ExitVars)
	}
	if len(s.BaseAtoms) != 1 || s.BaseAtoms[0].Pred != "par" {
		t.Errorf("BaseAtoms = %v", s.BaseAtoms)
	}
}

func TestExtractSirupExample7(t *testing.T) {
	// Example 7 of the paper.
	s, err := ExtractSirup(parser.MustParse(`
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`))
	if err != nil {
		t.Fatal(err)
	}
	if s.T != "p" || s.S != "s" || s.RecAtom != 0 {
		t.Errorf("T=%s S=%s RecAtom=%d", s.T, s.S, s.RecAtom)
	}
	if got := strings.Join(s.BodyVars, ","); got != "V,W,Z" {
		t.Errorf("BodyVars = %v", s.BodyVars)
	}
}

func TestExtractSirupIgnoresFacts(t *testing.T) {
	_, err := ExtractSirup(parser.MustParse(ancestorSrc + "\npar(a, b).\n"))
	if err != nil {
		t.Errorf("facts should not break sirup extraction: %v", err)
	}
}

func TestExtractSirupRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"nonlinear", nonlinearSrc, "not linear"},
		{"three rules", ancestorSrc + "anc(X, Y) :- par(Y, X).", "exactly 2"},
		{"two exits", "p(X) :- q(X).\np(X) :- r(X).", "more than one exit"},
		{"two recursive", "p(X) :- p(X), q(X).\np(X) :- p(X), r(X).", "more than one recursive"},
		{"different heads", "p(X) :- q(X).\nz(X) :- z(X), q(X).", "different predicates"},
		{"const in head", "p(X, a) :- q(X).\np(X, Y) :- p(Y, X), q(X).", "non-variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ExtractSirup(parser.MustParse(tc.src))
			if err == nil {
				t.Fatal("ExtractSirup succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCheckSafety(t *testing.T) {
	if err := CheckSafety(parser.MustParse(ancestorSrc)); err != nil {
		t.Errorf("safe program rejected: %v", err)
	}
}

const unreachableSrc = `
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
unreachable(X) :- node(X), !reach(X).
`

func TestStratifyAccepts(t *testing.T) {
	sccs, err := Stratify(parser.MustParse(unreachableSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sccs) == 0 {
		t.Error("no SCCs")
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	if _, err := Stratify(parser.MustParse(`win(X) :- move(X, Y), !win(Y).`)); err == nil {
		t.Error("win/move accepted")
	}
	// Mutual negative cycle across two predicates.
	if _, err := Stratify(parser.MustParse(`
p(X) :- q0(X), !q(X).
q(X) :- q0(X), !p(X).
`)); err == nil {
		t.Error("mutual negation accepted")
	}
}

func TestStrataNumbers(t *testing.T) {
	strata, err := Strata(parser.MustParse(unreachableSrc + `
connected(X) :- node(X), !unreachable(X).
`))
	if err != nil {
		t.Fatal(err)
	}
	if strata["reach"] != 0 {
		t.Errorf("reach stratum = %d, want 0", strata["reach"])
	}
	if strata["unreachable"] != 1 {
		t.Errorf("unreachable stratum = %d, want 1", strata["unreachable"])
	}
	if strata["connected"] != 2 {
		t.Errorf("connected stratum = %d, want 2", strata["connected"])
	}
	// Positive chains stay in the same stratum.
	if strata["source"] != 0 || strata["edge"] != 0 {
		t.Errorf("base strata: %v", strata)
	}
}

func TestHasNegation(t *testing.T) {
	if HasNegation(parser.MustParse("p(X) :- q(X).")) {
		t.Error("pure program reported negated")
	}
	if !HasNegation(parser.MustParse("p(X) :- q(X), !r(X).")) {
		t.Error("negation not detected")
	}
}

func TestExtractSirupRejectsNegation(t *testing.T) {
	_, err := ExtractSirup(parser.MustParse(`
p(X) :- base(X).
p(Y) :- p(X), edge(X, Y), !blocked(Y).
`))
	if err == nil {
		t.Error("sirup with negation accepted")
	}
}
