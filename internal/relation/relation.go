// Package relation implements the tuple storage used by both evaluation
// engines: append-only relations over interned constants, with duplicate
// elimination and incrementally-maintained hash indexes.
//
// Rows are append-only and never removed, so a pair of integer watermarks
// into the row slice represents the semi-naive "previous total / delta"
// split without copying.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"parlog/internal/ast"
)

// Tuple is a ground tuple of interned constants.
type Tuple []ast.Value

// appendKey appends the 4-byte little-endian encoding of each value to buf.
// Used with the map[string(buf)] lookup pattern, which the compiler
// optimizes to avoid allocating.
func appendKey(buf []byte, vals []ast.Value) []byte {
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// Key encodes the tuple as a map key. Two tuples have equal keys iff they are
// equal element-wise.
func (t Tuple) Key() string {
	return string(appendKey(make([]byte, 0, 4*len(t)), t))
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a duplicate-free, append-only set of equal-arity tuples.
// The zero value is not usable; create with New. A Relation (including its
// cached indexes) is not safe for concurrent use; the engines give each
// processor its own relations.
type Relation struct {
	arity   int
	seen    map[string]struct{}
	rows    []Tuple
	indexes map[string]*Index
	keyBuf  []byte // scratch for allocation-free membership probes
}

// New returns an empty relation of the given arity.
func New(arity int) *Relation {
	return &Relation{
		arity:   arity,
		seen:    make(map[string]struct{}),
		indexes: make(map[string]*Index),
	}
}

// FromTuples builds a relation of the given arity from tuples, dropping
// duplicates.
func FromTuples(arity int, tuples [][]ast.Value) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Insert(t)
	}
	return r
}

// Arity returns the tuple width.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Insert adds t if not present, reporting whether it was new. The tuple is
// copied, so callers may reuse the backing slice. Insert panics on arity
// mismatch — that is always an engine bug, never data-dependent.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	r.keyBuf = appendKey(r.keyBuf[:0], t)
	if _, dup := r.seen[string(r.keyBuf)]; dup {
		return false
	}
	r.seen[string(r.keyBuf)] = struct{}{}
	r.rows = append(r.rows, t.Clone())
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	r.keyBuf = appendKey(r.keyBuf[:0], t)
	_, ok := r.seen[string(r.keyBuf)]
	return ok
}

// Rows returns the live, append-only row slice. Callers must not modify it.
func (r *Relation) Rows() []Tuple { return r.rows }

// Row returns the i-th tuple.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Clone returns an independent deep copy (indexes are not copied; they
// rebuild lazily).
func (r *Relation) Clone() *Relation {
	out := New(r.arity)
	for _, t := range r.rows {
		out.Insert(t)
	}
	return out
}

// Equal reports whether r and s contain exactly the same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || len(r.rows) != len(s.rows) {
		return false
	}
	for k := range r.seen {
		if _, ok := s.seen[k]; !ok {
			return false
		}
	}
	return true
}

// SortedRows returns the tuples in lexicographic order; for deterministic
// output and tests.
func (r *Relation) SortedRows() []Tuple {
	out := make([]Tuple, len(r.rows))
	copy(out, r.rows)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// String renders the relation's raw tuples; for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.SortedRows() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range t {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// IndexOn returns a hash index on the given columns, building or refreshing
// it as needed. Indexes are cached per column set and maintained
// incrementally because rows are append-only.
func (r *Relation) IndexOn(cols ...int) *Index {
	sig := indexSig(cols)
	idx, ok := r.indexes[sig]
	if !ok {
		idx = &Index{rel: r, cols: append([]int(nil), cols...), m: make(map[string][]int)}
		r.indexes[sig] = idx
	}
	idx.refresh()
	return idx
}

func indexSig(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}

// Index is a hash index over a column subset of a relation. Row ids in each
// bucket are ascending, which lets range-restricted lookups binary-search.
type Index struct {
	rel    *Relation
	cols   []int
	m      map[string][]int
	built  int    // rows indexed so far
	keyBuf []byte // scratch for allocation-free probes
}

// refresh extends the index over rows appended since the last refresh.
func (ix *Index) refresh() {
	for ; ix.built < len(ix.rel.rows); ix.built++ {
		t := ix.rel.rows[ix.built]
		ix.keyBuf = ix.appendColsKey(ix.keyBuf[:0], t)
		ix.m[string(ix.keyBuf)] = append(ix.m[string(ix.keyBuf)], ix.built)
	}
}

func (ix *Index) appendColsKey(buf []byte, t Tuple) []byte {
	for _, c := range ix.cols {
		v := t[c]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// Lookup calls fn with each row id in [lo,hi) whose indexed columns equal
// vals, in ascending order. fn returning false stops the scan. The index is
// refreshed first, so rows inserted since IndexOn are visible.
func (ix *Index) Lookup(vals []ast.Value, lo, hi int, fn func(row int) bool) {
	ix.refresh()
	ix.keyBuf = appendKey(ix.keyBuf[:0], vals)
	bucket := ix.m[string(ix.keyBuf)]
	// Binary search for the first id >= lo.
	start := sort.SearchInts(bucket, lo)
	for _, id := range bucket[start:] {
		if id >= hi {
			return
		}
		if !fn(id) {
			return
		}
	}
}
