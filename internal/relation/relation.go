// Package relation implements the tuple storage used by both evaluation
// engines: append-only relations over interned constants, with duplicate
// elimination and incrementally-maintained hash indexes.
//
// Rows are append-only and never removed, so a pair of integer watermarks
// into the row sequence represents the semi-naive "previous total / delta"
// split without copying.
//
// Storage layout. A relation of arity k keeps all tuples in one flat
// []ast.Value arena, row i occupying data[i*k : (i+1)*k]. Insert appends
// into the arena — the only allocations are the amortized arena/table
// growths. Duplicate elimination is an open-addressing hash table of row
// ids probing FNV-1a hashes computed directly from the arena; no string
// keys are ever materialized. Indexes bucket rows by a column subset into
// runs of a shared []int32 postings arena (see Index). Values are immutable
// once written, so slices into an old arena backing array remain valid
// after growth — callers may hold Row results across later Inserts.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"parlog/internal/ast"
)

// Tuple is a ground tuple of interned constants.
type Tuple []ast.Value

// appendKey appends the 4-byte little-endian encoding of each value to buf.
func appendKey(buf []byte, vals []ast.Value) []byte {
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// Key encodes the tuple as a map key. Two tuples have equal keys iff they are
// equal element-wise.
func (t Tuple) Key() string {
	return string(appendKey(make([]byte, 0, 4*len(t)), t))
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// FNV-1a over the little-endian bytes of each value. Matches the classic
// 64-bit parameters; kept byte-at-a-time so the hash equals hashing the
// Tuple.Key encoding.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashVal folds one value into h.
func hashVal(h uint64, v ast.Value) uint64 {
	u := uint32(v)
	h = (h ^ uint64(u&0xff)) * fnvPrime
	h = (h ^ uint64((u>>8)&0xff)) * fnvPrime
	h = (h ^ uint64((u>>16)&0xff)) * fnvPrime
	h = (h ^ uint64(u>>24)) * fnvPrime
	return h
}

func hashVals(vals []ast.Value) uint64 {
	h := fnvOffset
	for _, v := range vals {
		h = hashVal(h, v)
	}
	return h
}

// Relation is a duplicate-free, append-only set of equal-arity tuples.
// The zero value is not usable; create with New. A Relation (including its
// cached indexes) is not safe for concurrent use; the engines give each
// processor its own relations.
type Relation struct {
	arity int
	data  []ast.Value // flat arena: row i is data[i*arity:(i+1)*arity]
	n     int         // number of rows
	table []int32     // open addressing: row id + 1, 0 = empty
	mask  uint64      // len(table) - 1

	// counts is the optional annotation column of counted mode (see
	// EnableCounts): counts[i] is row i's derivation count. nil means plain
	// set mode, where every physical row is live. In counted mode a row with
	// count 0 is dead-but-canonical (still reachable through the dedup
	// table, so a later re-insert can detect the rebirth) and a row with
	// count countSuperseded was replaced by a newer physical row for the
	// same tuple and is unreachable garbage.
	counts []int32
	// junk counts rows that are not live: dead-canonical plus superseded.
	junk int

	indexes map[uint64]*Index // fast path, keyed by packed column signature
	extra   []*Index          // overflow for column sets the packing can't encode
}

const initialTableSize = 16

// New returns an empty relation of the given arity.
func New(arity int) *Relation {
	return &Relation{
		arity: arity,
		table: make([]int32, initialTableSize),
		mask:  initialTableSize - 1,
	}
}

// FromTuples builds a relation of the given arity from tuples, dropping
// duplicates.
func FromTuples(arity int, tuples [][]ast.Value) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Insert(t)
	}
	return r
}

// Arity returns the tuple width.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct live tuples. In plain set mode that is
// the physical row count; in counted mode dead and superseded rows are
// excluded. Use NumRows for the physical bound (watermarks, Row loops).
func (r *Relation) Len() int { return r.n - r.junk }

// NumRows returns the physical row count of the arena, including dead and
// superseded rows of counted mode. Row ids range over [0, NumRows).
func (r *Relation) NumRows() int { return r.n }

// row returns the arena slice of row i, capacity-capped so an append by a
// careless caller cannot clobber the following row.
func (r *Relation) row(i int) Tuple {
	lo, hi := i*r.arity, (i+1)*r.arity
	return Tuple(r.data[lo:hi:hi])
}

// rowEqual compares row i against t (len(t) == arity).
func (r *Relation) rowEqual(i int, t []ast.Value) bool {
	base := i * r.arity
	for j, v := range t {
		if r.data[base+j] != v {
			return false
		}
	}
	return true
}

// hashRow hashes row i straight from the arena.
func (r *Relation) hashRow(i int) uint64 {
	base := i * r.arity
	h := fnvOffset
	for j := 0; j < r.arity; j++ {
		h = hashVal(h, r.data[base+j])
	}
	return h
}

// Insert adds t if not present, reporting whether it was new. The values are
// copied into the arena, so callers may reuse the backing slice. Insert
// panics on arity mismatch — that is always an engine bug, never
// data-dependent.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	if r.counts != nil {
		_, alive := r.InsertDelta(t, 1)
		return alive
	}
	i := hashVals(t) & r.mask
	for {
		s := r.table[i]
		if s == 0 {
			break
		}
		if r.rowEqual(int(s-1), t) {
			return false
		}
		i = (i + 1) & r.mask
	}
	row := r.n
	r.data = append(r.data, t...)
	r.n++
	r.table[i] = int32(row + 1)
	if uint64(r.n)*4 >= uint64(len(r.table))*3 {
		r.growTable()
	}
	return true
}

// growTable doubles the hash table, rehashing every row from the arena.
// Superseded rows (counted mode) are skipped: only the canonical physical
// row of each tuple lives in the table.
func (r *Relation) growTable() {
	nt := make([]int32, len(r.table)*2)
	mask := uint64(len(nt) - 1)
	for row := 0; row < r.n; row++ {
		if r.counts != nil && r.counts[row] == countSuperseded {
			continue
		}
		i := r.hashRow(row) & mask
		for nt[i] != 0 {
			i = (i + 1) & mask
		}
		nt[i] = int32(row + 1)
	}
	r.table = nt
	r.mask = mask
}

// Contains reports membership; in counted mode, membership of the live set.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	i := hashVals(t) & r.mask
	for {
		s := r.table[i]
		if s == 0 {
			return false
		}
		if r.rowEqual(int(s-1), t) {
			return r.counts == nil || r.counts[s-1] > 0
		}
		i = (i + 1) & r.mask
	}
}

// Rows returns the current rows as tuple headers into the arena. The result
// is a snapshot of the ids present at call time (later Inserts are not
// reflected); the tuples themselves must not be modified. Prefer Len/Row in
// hot loops — Rows allocates the header slice.
func (r *Relation) Rows() []Tuple {
	if r.counts == nil {
		out := make([]Tuple, r.n)
		for i := range out {
			out[i] = r.row(i)
		}
		return out
	}
	out := make([]Tuple, 0, r.n-r.junk)
	for i := 0; i < r.n; i++ {
		if r.counts[i] > 0 {
			out = append(out, r.row(i))
		}
	}
	return out
}

// Row returns the i-th tuple as a slice into the arena. Valid forever —
// arena growth never invalidates previously returned rows.
func (r *Relation) Row(i int) Tuple {
	if i >= r.n {
		panic(fmt.Sprintf("relation: row %d out of range (len %d)", i, r.n))
	}
	return r.row(i)
}

// Clone returns an independent deep copy: the arena and dedup table are
// copied wholesale, with no per-tuple rehashing. Indexes are not copied;
// they rebuild lazily.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		arity: r.arity,
		data:  append([]ast.Value(nil), r.data...),
		n:     r.n,
		table: append([]int32(nil), r.table...),
		mask:  r.mask,
		junk:  r.junk,
	}
	if r.counts != nil {
		out.counts = append([]int32(nil), r.counts...)
	}
	return out
}

// Equal reports whether r and s contain exactly the same live tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || r.Len() != s.Len() {
		return false
	}
	for i := 0; i < r.n; i++ {
		if r.counts != nil && r.counts[i] <= 0 {
			continue
		}
		if !s.Contains(r.row(i)) {
			return false
		}
	}
	return true
}

// SortedRows returns the tuples in lexicographic order; for deterministic
// output and tests.
func (r *Relation) SortedRows() []Tuple {
	out := r.Rows()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// String renders the relation's raw tuples; for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.SortedRows() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range t {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// indexSig packs a column set into one integer: 6 bits per column (value
// col+1), length in the high bits. Unique whenever every column is < 63 and
// there are at most 9 columns; wider sets report ok=false and take the
// linear overflow path.
func indexSig(cols []int) (uint64, bool) {
	if len(cols) > 9 {
		return 0, false
	}
	sig := uint64(len(cols))
	for _, c := range cols {
		if c < 0 || c >= 63 {
			return 0, false
		}
		sig = sig<<6 | uint64(c+1)
	}
	return sig, true
}

func sameCols(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IndexOn returns a hash index on the given columns, building or refreshing
// it as needed. Indexes are cached per column set and maintained
// incrementally because rows are append-only.
func (r *Relation) IndexOn(cols ...int) *Index {
	var idx *Index
	if sig, ok := indexSig(cols); ok {
		if r.indexes == nil {
			r.indexes = make(map[uint64]*Index)
		}
		idx = r.indexes[sig]
		if idx == nil {
			idx = newIndex(r, cols)
			r.indexes[sig] = idx
		}
	} else {
		for _, ix := range r.extra {
			if sameCols(ix.cols, cols) {
				idx = ix
				break
			}
		}
		if idx == nil {
			idx = newIndex(r, cols)
			r.extra = append(r.extra, idx)
		}
	}
	idx.refresh()
	return idx
}

// Index is a hash index over a column subset of a relation. Rows with equal
// indexed columns form a run — a contiguous ascending window of a shared
// []int32 postings arena — so a range-restricted lookup is one hash probe
// plus a binary search. Runs grow by relocation to the arena's end with
// doubled capacity; the abandoned region is never overwritten, so a run
// slice captured before a reentrant refresh stays valid (its missing new
// ids are out of the caller's row range by construction: rows inserted
// after a lookup's bounds were taken have ids >= hi).
type Index struct {
	rel  *Relation
	cols []int

	slots   []int32 // open addressing: entry id + 1, 0 = empty
	mask    uint64  // len(slots) - 1
	entries []idxEntry
	post    []int32 // postings arena, runs of ascending row ids
	built   int     // rows indexed so far
}

// idxEntry is one distinct key: its hash, its current run window, and a
// representative row whose indexed columns spell the key out.
type idxEntry struct {
	hash        uint64
	off, n, cap int32
	rep         int32
}

const initialSlotSize = 16

func newIndex(r *Relation, cols []int) *Index {
	return &Index{
		rel:   r,
		cols:  append([]int(nil), cols...),
		slots: make([]int32, initialSlotSize),
		mask:  initialSlotSize - 1,
	}
}

// rowHash hashes the indexed columns of row straight from the arena.
func (ix *Index) rowHash(row int) uint64 {
	base := row * ix.rel.arity
	h := fnvOffset
	for _, c := range ix.cols {
		h = hashVal(h, ix.rel.data[base+c])
	}
	return h
}

// keyEqualRow reports whether row's indexed columns equal entry e's key.
func (ix *Index) keyEqualRow(e *idxEntry, row int) bool {
	a := int(e.rep) * ix.rel.arity
	b := row * ix.rel.arity
	for _, c := range ix.cols {
		if ix.rel.data[a+c] != ix.rel.data[b+c] {
			return false
		}
	}
	return true
}

// keyEqualVals reports whether vals equal entry e's key.
func (ix *Index) keyEqualVals(e *idxEntry, vals []ast.Value) bool {
	a := int(e.rep) * ix.rel.arity
	for i, c := range ix.cols {
		if ix.rel.data[a+c] != vals[i] {
			return false
		}
	}
	return true
}

// refresh extends the index over rows appended since the last refresh.
func (ix *Index) refresh() {
	for ; ix.built < ix.rel.n; ix.built++ {
		row := ix.built
		h := ix.rowHash(row)
		i := h & ix.mask
		ei := int32(-1)
		for {
			s := ix.slots[i]
			if s == 0 {
				break
			}
			if e := &ix.entries[s-1]; e.hash == h && ix.keyEqualRow(e, row) {
				ei = s - 1
				break
			}
			i = (i + 1) & ix.mask
		}
		if ei < 0 {
			// New key: open a 2-slot run at the arena's end.
			off := ix.grow(2)
			ix.entries = append(ix.entries, idxEntry{hash: h, off: off, cap: 2, rep: int32(row)})
			ei = int32(len(ix.entries) - 1)
			ix.slots[i] = ei + 1
			if uint64(len(ix.entries))*4 >= uint64(len(ix.slots))*3 {
				ix.growSlots()
			}
		}
		e := &ix.entries[ei]
		if e.n == e.cap {
			// Relocate the run to the end with doubled capacity. The old
			// region is abandoned, never reused: captured run slices stay
			// intact.
			newOff := ix.grow(e.cap * 2)
			copy(ix.post[newOff:], ix.post[e.off:e.off+e.n])
			e.off = newOff
			e.cap *= 2
		}
		ix.post[e.off+e.n] = int32(row)
		e.n++
	}
}

// grow extends the postings arena by c zeroed slots, returning their offset.
func (ix *Index) grow(c int32) int32 {
	off := len(ix.post)
	need := off + int(c)
	if need <= cap(ix.post) {
		ix.post = ix.post[:need]
		for i := off; i < need; i++ {
			ix.post[i] = 0
		}
		return int32(off)
	}
	newCap := 2 * cap(ix.post)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	np := make([]int32, need, newCap)
	copy(np, ix.post)
	ix.post = np
	return int32(off)
}

// growSlots doubles the slot table, rehashing from the stored entry hashes.
func (ix *Index) growSlots() {
	ns := make([]int32, len(ix.slots)*2)
	mask := uint64(len(ns) - 1)
	for i := range ix.entries {
		j := ix.entries[i].hash & mask
		for ns[j] != 0 {
			j = (j + 1) & mask
		}
		ns[j] = int32(i + 1)
	}
	ix.slots = ns
	ix.mask = mask
}

// Lookup calls fn with each row id in [lo,hi) whose indexed columns equal
// vals, in ascending order. fn returning false stops the scan. The index is
// refreshed first, so rows inserted since IndexOn are visible. fn may
// insert into the underlying relation: the captured run is immune to
// relocation, and rows inserted mid-scan have ids >= the relation length at
// refresh time, hence >= any legal hi.
func (ix *Index) Lookup(vals []ast.Value, lo, hi int, fn func(row int) bool) {
	ix.refresh()
	h := hashVals(vals)
	i := h & ix.mask
	var run []int32
	for {
		s := ix.slots[i]
		if s == 0 {
			return
		}
		if e := &ix.entries[s-1]; e.hash == h && ix.keyEqualVals(e, vals) {
			run = ix.post[e.off : e.off+e.n]
			break
		}
		i = (i + 1) & ix.mask
	}
	// Binary search for the first id >= lo; runs are ascending.
	start := sort.Search(len(run), func(k int) bool { return int(run[k]) >= lo })
	for _, id := range run[start:] {
		if int(id) >= hi {
			return
		}
		if !fn(int(id)) {
			return
		}
	}
}

// Probe returns the ascending run of row ids in [lo,hi) whose indexed
// columns equal vals, as a shared sub-slice of the postings arena — the
// capturable form of Lookup that streaming iterators suspend over. Callers
// must not modify it. The captured run is immune to relocation (abandoned
// regions are never reused), and rows inserted after the probe have ids >=
// the relation length at refresh time, hence >= any legal hi.
func (ix *Index) Probe(vals []ast.Value, lo, hi int) []int32 {
	ix.refresh()
	h := hashVals(vals)
	i := h & ix.mask
	var run []int32
	for {
		s := ix.slots[i]
		if s == 0 {
			return nil
		}
		if e := &ix.entries[s-1]; e.hash == h && ix.keyEqualVals(e, vals) {
			run = ix.post[e.off : e.off+e.n]
			break
		}
		i = (i + 1) & ix.mask
	}
	start := sort.Search(len(run), func(k int) bool { return int(run[k]) >= lo })
	end := start + sort.Search(len(run[start:]), func(k int) bool { return int(run[start+k]) >= hi })
	return run[start:end]
}
