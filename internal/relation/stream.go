package relation

import "parlog/internal/ast"

// Iterator is a single-use, pull-based stream of rows of one relation.
// Tuples are views straight into the columnar arena (rows are immutable
// once inserted), so consuming a tuple costs no copy; callers that retain
// one across inserts must Clone it. Next returns nil when exhausted.
//
// Iterators are the composable half of the executor: Scan produces, Probe
// restricts by an index lookup, Select filters — a probe→join→select
// pipeline materializes nothing between stages.
type Iterator interface {
	Next() Tuple
}

// scanIter walks rows [next,hi) of a relation.
type scanIter struct {
	r        *Relation
	next, hi int
}

func (s *scanIter) Next() Tuple {
	for s.next < s.hi {
		row := s.next
		s.next++
		if s.r.Alive(row) {
			return s.r.Row(row)
		}
	}
	return nil
}

// Scan streams rows [lo,hi) of r in insertion order. hi is clamped to the
// relation's length at call time; rows inserted later are not observed.
func Scan(r *Relation, lo, hi int) Iterator {
	if r == nil {
		return &scanIter{}
	}
	if n := r.NumRows(); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	return &scanIter{r: r, next: lo, hi: hi}
}

// probeIter walks a captured index run (ascending row ids).
type probeIter struct {
	r   *Relation
	run []int32
}

func (p *probeIter) Next() Tuple {
	for len(p.run) > 0 {
		row := int(p.run[0])
		p.run = p.run[1:]
		if p.r.Alive(row) {
			return p.r.Row(row)
		}
	}
	return nil
}

// Probe streams the rows of r in [lo,hi) whose cols equal vals, in
// insertion order, via a hash-index lookup. With no bound columns it
// degenerates to a Scan. The index probe happens eagerly (vals may be
// reused by the caller afterwards); iteration is lazy and — like
// Index.Lookup — remains valid if the consumer inserts into r mid-stream.
func Probe(r *Relation, cols []int, vals []ast.Value, lo, hi int) Iterator {
	if r == nil {
		return &scanIter{}
	}
	if len(cols) == 0 {
		return Scan(r, lo, hi)
	}
	if n := r.NumRows(); hi > n {
		hi = n
	}
	if lo >= hi {
		return &probeIter{}
	}
	return &probeIter{r: r, run: r.IndexOn(cols...).Probe(vals, lo, hi)}
}

// selectIter filters an upstream iterator.
type selectIter struct {
	in   Iterator
	keep func(Tuple) bool
}

func (s *selectIter) Next() Tuple {
	for {
		t := s.in.Next()
		if t == nil || s.keep(t) {
			return t
		}
	}
}

// Select streams the tuples of in for which keep returns true.
func Select(in Iterator, keep func(Tuple) bool) Iterator {
	return &selectIter{in: in, keep: keep}
}
