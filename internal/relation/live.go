package relation

import "fmt"

// Counted mode: the incremental-view-maintenance annotation column.
//
// A counted relation carries one int32 per physical row — the tuple's
// derivation count (number of base supports plus successful rule firings
// deriving it). The live set is the rows with count > 0. Rows stay
// append-only: a deletion decrements counts and a count reaching zero marks
// the row dead in place (it keeps its dedup-table slot so a later re-insert
// can detect the rebirth), while a rebirth appends a NEW physical row and
// repoints the dedup table — so newly-live tuples always occupy fresh row
// ids and the engine's row-id watermarks delimit maintenance deltas exactly
// as they delimit semi-naive deltas.
//
// countSuperseded marks the abandoned old row of a rebirth; such rows are
// unreachable garbage until Compact drops them.
const countSuperseded int32 = -1

// EnableCounts switches r to counted mode, giving every existing row count
// initial. No-op if already counted.
func (r *Relation) EnableCounts(initial int32) {
	if r.counts != nil {
		return
	}
	r.counts = make([]int32, r.n)
	for i := range r.counts {
		r.counts[i] = initial
	}
}

// Counted reports whether r is in counted mode.
func (r *Relation) Counted() bool { return r.counts != nil }

// Alive reports whether row id is live. Plain relations are entirely live.
func (r *Relation) Alive(row int) bool {
	return r.counts == nil || r.counts[row] > 0
}

// CountOf returns row's derivation count (0 for dead, countSuperseded<0 for
// superseded rows). Panics in plain mode.
func (r *Relation) CountOf(row int) int32 { return r.counts[row] }

// LookupRow returns the canonical physical row of t, alive or dead, or -1
// when t was never inserted (or its only rows are superseded — impossible,
// rebirth always leaves a canonical row).
func (r *Relation) LookupRow(t Tuple) int {
	if len(t) != r.arity {
		return -1
	}
	i := hashVals(t) & r.mask
	for {
		s := r.table[i]
		if s == 0 {
			return -1
		}
		if r.rowEqual(int(s-1), t) {
			return int(s - 1)
		}
		i = (i + 1) & r.mask
	}
}

// InsertDelta adds delta (> 0) to t's derivation count in counted mode,
// returning the tuple's canonical row and whether it just became live. A
// tuple that is absent — or present but dead — lands on a freshly appended
// physical row, so callers can rely on row-id watermarks to see exactly the
// newly-live tuples; a dead predecessor is marked superseded and unlinked.
func (r *Relation) InsertDelta(t Tuple, delta int32) (int, bool) {
	if r.counts == nil {
		panic("relation: InsertDelta on a plain (uncounted) relation")
	}
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	if delta <= 0 {
		panic("relation: InsertDelta requires a positive delta")
	}
	i := hashVals(t) & r.mask
	for {
		s := r.table[i]
		if s == 0 {
			break
		}
		if row := int(s - 1); r.rowEqual(row, t) {
			if r.counts[row] > 0 {
				r.counts[row] += delta
				return row, false
			}
			// Rebirth: supersede the dead row, append a fresh one, repoint.
			r.counts[row] = countSuperseded
			row = r.appendRow(t, delta)
			r.table[i] = int32(row + 1)
			r.maybeGrow()
			return row, true
		}
		i = (i + 1) & r.mask
	}
	row := r.appendRow(t, delta)
	r.table[i] = int32(row + 1)
	r.maybeGrow()
	return row, true
}

// appendRow appends t to the arena with the given count, returning its row.
func (r *Relation) appendRow(t Tuple, count int32) int {
	row := r.n
	r.data = append(r.data, t...)
	r.counts = append(r.counts, count)
	r.n++
	return row
}

// maybeGrow grows the dedup table past 3/4 load. Superseded rows still hold
// slots until the next grow, so counted mode grows on physical rows like
// plain mode does — slightly early, never late.
func (r *Relation) maybeGrow() {
	if uint64(r.n)*4 >= uint64(len(r.table))*3 {
		r.growTable()
	}
}

// AddDelta adjusts row's count by delta (typically negative, from a
// deletion). A count reaching zero kills the row in place; it must not go
// negative — that is an engine bug. Returns true when the row just died.
func (r *Relation) AddDelta(row int, delta int32) bool {
	c := r.counts[row] + delta
	if c < 0 {
		panic(fmt.Sprintf("relation: row %d count underflow (%d%+d)", row, r.counts[row], delta))
	}
	wasAlive := r.counts[row] > 0
	r.counts[row] = c
	if wasAlive && c == 0 {
		r.junk++
		return true
	}
	if !wasAlive && c > 0 {
		// Resurrection in place is forbidden: watermark deltas would miss it.
		panic("relation: AddDelta resurrected a dead row; use InsertDelta")
	}
	return false
}

// SetCount overwrites row's count, maintaining the junk accounting. Used by
// the rederivation pass, which recomputes exact counts for revived tuples.
// The row must currently be alive (SetCount cannot resurrect).
func (r *Relation) SetCount(row int, c int32) {
	if c <= 0 || r.counts[row] <= 0 {
		panic("relation: SetCount must keep an alive row alive")
	}
	r.counts[row] = c
}

// Compact returns an immutable plain-mode relation of the live tuples — the
// snapshot form handed to concurrent readers. When no row has ever died the
// arena is shared zero-copy: the returned relation aliases r.data pinned at
// the current length (later appends by the writer land beyond the pin, in
// memory the snapshot never reads) and the dedup table is copied wholesale.
// Otherwise live rows are filter-copied into a fresh relation.
func (r *Relation) Compact() *Relation {
	if r.junk == 0 {
		end := r.n * r.arity
		return &Relation{
			arity: r.arity,
			data:  r.data[:end:end],
			n:     r.n,
			table: append([]int32(nil), r.table...),
			mask:  r.mask,
		}
	}
	out := New(r.arity)
	for i := 0; i < r.n; i++ {
		if r.counts[i] > 0 {
			out.Insert(r.row(i))
		}
	}
	return out
}
