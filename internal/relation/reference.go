package relation

// Reference is the retained pre-arena representation of a relation: one
// heap-allocated Tuple per row plus a string-keyed membership map — the
// storage layout this package used before the flat-arena rewrite. It is
// deliberately naive and kept only as a differential-testing baseline:
// the arena-backed Relation must stay observably equivalent to this
// obviously-correct implementation on every program (internal/randprog
// drives the comparison over random programs and all engines).
type Reference struct {
	arity int
	seen  map[string]bool
	rows  []Tuple
}

// NewReference returns an empty reference relation of the given arity.
func NewReference(arity int) *Reference {
	return &Reference{arity: arity, seen: make(map[string]bool)}
}

// Arity returns the tuple width.
func (r *Reference) Arity() int { return r.arity }

// Len returns the number of distinct tuples.
func (r *Reference) Len() int { return len(r.rows) }

// Insert adds a copy of t and reports whether it was new.
func (r *Reference) Insert(t Tuple) bool {
	k := t.Key()
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	r.rows = append(r.rows, t.Clone())
	return true
}

// Contains reports membership.
func (r *Reference) Contains(t Tuple) bool { return r.seen[t.Key()] }

// Rows returns the stored tuples in insertion order. Callers must not
// modify them.
func (r *Reference) Rows() []Tuple { return r.rows }

// EqualRelation reports whether the reference holds exactly the tuples of
// the arena-backed rel (nil rel counts as empty).
func (r *Reference) EqualRelation(rel *Relation) bool {
	if rel == nil {
		return len(r.rows) == 0
	}
	if rel.Len() != len(r.rows) || (rel.Len() > 0 && rel.Arity() != r.arity) {
		return false
	}
	for i := 0; i < rel.Len(); i++ {
		if !r.seen[rel.Row(i).Key()] {
			return false
		}
	}
	return true
}
