package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parlog/internal/ast"
)

func tup(vs ...ast.Value) Tuple { return Tuple(vs) }

func TestInsertDeduplicates(t *testing.T) {
	r := New(2)
	if !r.Insert(tup(1, 2)) {
		t.Fatal("first insert reported duplicate")
	}
	if r.Insert(tup(1, 2)) {
		t.Fatal("duplicate insert reported new")
	}
	if !r.Insert(tup(2, 1)) {
		t.Fatal("distinct tuple reported duplicate")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(tup(1, 2)) || r.Contains(tup(9, 9)) {
		t.Error("Contains misreported")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := New(1)
	backing := Tuple{7}
	r.Insert(backing)
	backing[0] = 8
	if !r.Contains(tup(7)) || r.Contains(tup(8)) {
		t.Error("Insert aliased the caller's slice")
	}
}

func TestInsertArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	New(2).Insert(tup(1))
}

func TestKeyInjective(t *testing.T) {
	// Tuples that would collide under naive byte concatenation of small ints.
	a := tup(1, 0)
	b := tup(0, 1)
	if a.Key() == b.Key() {
		t.Error("Key not injective for (1,0)/(0,1)")
	}
	c := tup(256)
	d := tup(1)
	if c.Key() == d.Key() {
		t.Error("Key not injective for 256/1")
	}
}

func TestEqual(t *testing.T) {
	r := FromTuples(2, [][]ast.Value{{1, 2}, {3, 4}})
	s := FromTuples(2, [][]ast.Value{{3, 4}, {1, 2}})
	if !r.Equal(s) {
		t.Error("order-insensitive equality failed")
	}
	s.Insert(tup(5, 6))
	if r.Equal(s) {
		t.Error("unequal relations reported equal")
	}
	if r.Equal(New(3)) {
		t.Error("different arity reported equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := FromTuples(1, [][]ast.Value{{1}})
	c := r.Clone()
	c.Insert(tup(2))
	if r.Contains(tup(2)) {
		t.Error("Clone shares storage")
	}
}

func TestSortedRows(t *testing.T) {
	r := FromTuples(2, [][]ast.Value{{3, 1}, {1, 2}, {1, 1}, {2, 9}})
	sorted := r.SortedRows()
	want := []Tuple{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	for i := range want {
		if !sorted[i].Equal(want[i]) {
			t.Fatalf("SortedRows = %v", sorted)
		}
	}
}

func TestIndexLookup(t *testing.T) {
	r := New(2)
	r.Insert(tup(1, 10))
	r.Insert(tup(2, 20))
	r.Insert(tup(1, 11))
	ix := r.IndexOn(0)
	var got []int
	ix.Lookup([]ast.Value{1}, 0, r.Len(), func(row int) bool {
		got = append(got, row)
		return true
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Lookup rows = %v, want [0 2]", got)
	}
}

func TestIndexSeesLaterInserts(t *testing.T) {
	r := New(2)
	r.Insert(tup(1, 10))
	ix := r.IndexOn(0)
	r.Insert(tup(1, 11)) // inserted after index creation
	var got []int
	ix.Lookup([]ast.Value{1}, 0, r.Len(), func(row int) bool {
		got = append(got, row)
		return true
	})
	if len(got) != 2 {
		t.Errorf("index did not refresh: rows = %v", got)
	}
}

func TestIndexRangeRestriction(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		r.Insert(tup(ast.Value(i % 2)))
	}
	// Only two distinct tuples survive dedup: 0 at row 0, 1 at row 1.
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	ix := r.IndexOn(0)
	count := 0
	ix.Lookup([]ast.Value{0}, 1, 2, func(int) bool { count++; return true })
	if count != 0 {
		t.Errorf("range [1,2) matched %d rows for value 0, want 0", count)
	}
	ix.Lookup([]ast.Value{1}, 1, 2, func(int) bool { count++; return true })
	if count != 1 {
		t.Errorf("range [1,2) matched %d rows for value 1, want 1", count)
	}
}

func TestIndexEarlyStop(t *testing.T) {
	r := New(1)
	r.Insert(tup(1))
	r2 := New(2)
	_ = r2
	r.Insert(tup(2))
	ix := r.IndexOn() // zero-column index: all rows in one bucket
	var got []int
	ix.Lookup(nil, 0, r.Len(), func(row int) bool {
		got = append(got, row)
		return false // stop after first
	})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("early stop rows = %v", got)
	}
}

func TestIndexMultiColumn(t *testing.T) {
	r := New(3)
	r.Insert(tup(1, 2, 3))
	r.Insert(tup(1, 2, 4))
	r.Insert(tup(1, 3, 3))
	ix := r.IndexOn(0, 1)
	count := 0
	ix.Lookup([]ast.Value{1, 2}, 0, r.Len(), func(int) bool { count++; return true })
	if count != 2 {
		t.Errorf("multi-column lookup matched %d rows, want 2", count)
	}
}

// Property: inserting any multiset of tuples yields a relation whose Len
// equals the number of distinct tuples, and Contains agrees with the set.
func TestInsertSetSemanticsProperty(t *testing.T) {
	f := func(raw [][2]uint8) bool {
		r := New(2)
		distinct := make(map[[2]uint8]bool)
		for _, p := range raw {
			r.Insert(tup(ast.Value(p[0]), ast.Value(p[1])))
			distinct[p] = true
		}
		if r.Len() != len(distinct) {
			return false
		}
		for p := range distinct {
			if !r.Contains(tup(ast.Value(p[0]), ast.Value(p[1]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: index lookup returns exactly the rows whose column matches.
func TestIndexAgreesWithScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := New(2)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			r.Insert(tup(ast.Value(rng.Intn(8)), ast.Value(rng.Intn(8))))
		}
		ix := r.IndexOn(1)
		for v := ast.Value(0); v < 8; v++ {
			var fromIndex []int
			ix.Lookup([]ast.Value{v}, 0, r.Len(), func(row int) bool {
				fromIndex = append(fromIndex, row)
				return true
			})
			var fromScan []int
			for i, row := range r.Rows() {
				if row[1] == v {
					fromScan = append(fromScan, i)
				}
			}
			if len(fromIndex) != len(fromScan) {
				t.Fatalf("trial %d value %d: index %v scan %v", trial, v, fromIndex, fromScan)
			}
			for i := range fromScan {
				if fromIndex[i] != fromScan[i] {
					t.Fatalf("trial %d value %d: index %v scan %v", trial, v, fromIndex, fromScan)
				}
			}
		}
	}
}

func BenchmarkInsertDistinct(b *testing.B) {
	r := New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Insert(tup(ast.Value(i), ast.Value(i>>8)))
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		r.Insert(tup(ast.Value(i%100), ast.Value(i)))
	}
	ix := r.IndexOn(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup([]ast.Value{ast.Value(i % 100)}, 0, r.Len(), func(int) bool { return true })
	}
}

func TestRowAndString(t *testing.T) {
	r := FromTuples(2, [][]ast.Value{{2, 1}, {1, 2}})
	if got := r.Row(0); !got.Equal(Tuple{2, 1}) {
		t.Errorf("Row(0) = %v", got)
	}
	if got := r.String(); got != "{(1,2), (2,1)}" {
		t.Errorf("String = %q", got)
	}
}
