package relation

import (
	"testing"

	"parlog/internal/ast"
)

func TestInsertDeltaBasics(t *testing.T) {
	r := New(2)
	r.EnableCounts(0)
	row, fresh := r.InsertDelta(tup(1, 2), 1)
	if !fresh || row != 0 {
		t.Fatalf("first InsertDelta = (%d,%v), want (0,true)", row, fresh)
	}
	row2, fresh2 := r.InsertDelta(tup(1, 2), 3)
	if fresh2 || row2 != 0 {
		t.Fatalf("repeat InsertDelta = (%d,%v), want (0,false)", row2, fresh2)
	}
	if got := r.CountOf(0); got != 4 {
		t.Errorf("CountOf = %d, want 4", got)
	}
	if r.Len() != 1 || r.NumRows() != 1 {
		t.Errorf("Len/NumRows = %d/%d, want 1/1", r.Len(), r.NumRows())
	}
}

func TestAddDeltaKillAndContains(t *testing.T) {
	r := New(2)
	r.EnableCounts(0)
	row, _ := r.InsertDelta(tup(1, 2), 2)
	if r.AddDelta(row, -1) {
		t.Fatal("count 2→1 reported death")
	}
	if !r.AddDelta(row, -1) {
		t.Fatal("count 1→0 did not report death")
	}
	if r.Alive(row) || r.Contains(tup(1, 2)) {
		t.Error("dead tuple still alive/Contains")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0 (live count)", r.Len())
	}
	if r.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1 (physical)", r.NumRows())
	}
	if got := r.LookupRow(tup(1, 2)); got != row {
		t.Errorf("LookupRow after death = %d, want canonical row %d", got, row)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddDelta underflow did not panic")
		}
	}()
	r.AddDelta(row, -1)
}

func TestRebirthAppendsFreshRow(t *testing.T) {
	r := New(1)
	r.EnableCounts(0)
	r.InsertDelta(tup(7), 1)
	r.InsertDelta(tup(8), 1)
	r.AddDelta(0, -1) // kill 7
	row, fresh := r.InsertDelta(tup(7), 1)
	if !fresh || row != 2 {
		t.Fatalf("rebirth = (%d,%v), want fresh row 2", row, fresh)
	}
	if r.LookupRow(tup(7)) != 2 {
		t.Errorf("LookupRow = %d, want repointed row 2", r.LookupRow(tup(7)))
	}
	if r.Len() != 2 || r.NumRows() != 3 {
		t.Errorf("Len/NumRows = %d/%d, want 2/3", r.Len(), r.NumRows())
	}
	if !r.Contains(tup(7)) {
		t.Error("reborn tuple not Contains")
	}
	// In-place resurrection is forbidden: the superseded row stays garbage.
	defer func() {
		if recover() == nil {
			t.Error("AddDelta resurrection did not panic")
		}
	}()
	r.AddDelta(2, -1) // kill the reborn row…
	r.AddDelta(2, 1)  // …and try to resurrect it in place
}

func TestCountedInsertAndRowsFilter(t *testing.T) {
	r := New(1)
	r.EnableCounts(0)
	if !r.Insert(tup(1)) {
		t.Fatal("Insert on counted relation reported duplicate")
	}
	if r.Insert(tup(1)) {
		t.Fatal("duplicate Insert reported new")
	}
	r.InsertDelta(tup(2), 1)
	r.AddDelta(0, -r.CountOf(0))
	rows := r.Rows()
	if len(rows) != 1 || rows[0][0] != 2 {
		t.Errorf("Rows = %v, want just [2]", rows)
	}
}

func TestCompactZeroCopyAndFiltered(t *testing.T) {
	// Fast path: no junk → arena-sharing snapshot.
	r := New(2)
	r.EnableCounts(0)
	r.InsertDelta(tup(1, 2), 1)
	r.InsertDelta(tup(3, 4), 2)
	snap := r.Compact()
	if snap.Counted() {
		t.Error("snapshot should be plain mode")
	}
	if snap.Len() != 2 || !snap.Contains(tup(1, 2)) || !snap.Contains(tup(3, 4)) {
		t.Errorf("fast-path snapshot wrong: Len=%d", snap.Len())
	}
	// Writer keeps appending; the snapshot must not see it.
	r.InsertDelta(tup(5, 6), 1)
	if snap.Len() != 2 || snap.Contains(tup(5, 6)) {
		t.Error("snapshot observed a post-snapshot insert")
	}

	// Slow path: junk present → filter copy.
	r.AddDelta(r.LookupRow(tup(1, 2)), -1)
	snap2 := r.Compact()
	if snap2.Len() != 2 || snap2.Contains(tup(1, 2)) || !snap2.Contains(tup(5, 6)) {
		t.Errorf("filtered snapshot wrong: Len=%d", snap2.Len())
	}
}

func TestCountedCloneAndEqual(t *testing.T) {
	r := New(1)
	r.EnableCounts(0)
	r.InsertDelta(tup(1), 1)
	r.InsertDelta(tup(2), 1)
	r.AddDelta(0, -1) // kill 1

	s := New(1)
	s.Insert(tup(2))
	if !r.Equal(s) || !s.Equal(r) {
		t.Error("live extent {2} should Equal plain {2}")
	}
	s.Insert(tup(1))
	if r.Equal(s) {
		t.Error("live {2} should differ from {1,2}")
	}

	c := r.Clone()
	if !c.Counted() || c.Len() != 1 || c.Contains(tup(1)) || !c.Contains(tup(2)) {
		t.Error("clone lost counted-mode state")
	}
	// Mutating the clone must not touch the original.
	c.InsertDelta(tup(3), 1)
	if r.Contains(tup(3)) {
		t.Error("clone shares state with original")
	}
}

func TestCountedGrowSkipsSuperseded(t *testing.T) {
	r := New(1)
	r.EnableCounts(0)
	// Kill and rebirth a tuple, then insert enough to force table growth.
	r.InsertDelta(tup(0), 1)
	r.AddDelta(0, -1)
	r.InsertDelta(tup(0), 1) // supersedes row 0
	for i := 1; i < 100; i++ {
		r.InsertDelta(tup(ast.Value(i)), 1)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if !r.Contains(tup(ast.Value(i))) {
			t.Fatalf("lost tuple %d after growth", i)
		}
	}
	if r.LookupRow(tup(0)) != 1 {
		t.Errorf("canonical row of reborn tuple = %d, want 1", r.LookupRow(tup(0)))
	}
}

func TestEnableCountsOnExistingRows(t *testing.T) {
	r := New(1)
	r.Insert(tup(1))
	r.Insert(tup(2))
	r.EnableCounts(5)
	if r.CountOf(0) != 5 || r.CountOf(1) != 5 {
		t.Error("EnableCounts initial not applied")
	}
	r.EnableCounts(9) // no-op
	if r.CountOf(0) != 5 {
		t.Error("EnableCounts was not a no-op the second time")
	}
}
