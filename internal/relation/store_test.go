package relation

import (
	"testing"

	"parlog/internal/ast"
)

func TestStoreGet(t *testing.T) {
	s := Store{}
	r := s.Get("p", 2)
	if r.Arity() != 2 {
		t.Fatalf("arity = %d", r.Arity())
	}
	if s.Get("p", 2) != r {
		t.Error("Get did not return the existing relation")
	}
	defer func() {
		if recover() == nil {
			t.Error("arity conflict did not panic")
		}
	}()
	s.Get("p", 3)
}

func TestStoreGetChecked(t *testing.T) {
	s := Store{}
	r, err := s.GetChecked("p", 2)
	if err != nil || r.Arity() != 2 {
		t.Fatalf("GetChecked create: %v, %v", r, err)
	}
	if again, err := s.GetChecked("p", 2); err != nil || again != r {
		t.Errorf("GetChecked did not return the existing relation: %v", err)
	}
	bad, err := s.GetChecked("p", 3)
	if err == nil || bad != nil {
		t.Fatalf("arity conflict not reported: %v, %v", bad, err)
	}
	if s["p"] != r || r.Arity() != 2 {
		t.Error("failed GetChecked must leave the existing relation untouched")
	}
}

func TestStoreInsertAll(t *testing.T) {
	s := Store{}
	n := s.InsertAll("p", [][]ast.Value{{1, 2}, {1, 2}, {3, 4}})
	if n != 2 {
		t.Errorf("InsertAll added %d, want 2", n)
	}
	if s["p"].Len() != 2 {
		t.Errorf("|p| = %d", s["p"].Len())
	}
	if s.InsertAll("empty", nil) != 0 {
		t.Error("empty insert returned nonzero")
	}
	if _, ok := s["empty"]; ok {
		t.Error("empty insert materialized a relation")
	}
}

func TestStoreClone(t *testing.T) {
	s := Store{}
	s.InsertAll("p", [][]ast.Value{{1}})
	c := s.Clone()
	c["p"].Insert(Tuple{2})
	if s["p"].Len() != 1 {
		t.Error("Clone shares relations")
	}
}

func TestStorePreds(t *testing.T) {
	s := Store{}
	s.Get("zeta", 1)
	s.Get("alpha", 1)
	got := s.Preds()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Preds = %v", got)
	}
}

func TestStoreEqualOn(t *testing.T) {
	a := Store{}
	b := Store{}
	a.InsertAll("p", [][]ast.Value{{1}})
	b.InsertAll("p", [][]ast.Value{{1}})
	if !a.EqualOn(b, []string{"p"}) {
		t.Error("equal stores reported unequal")
	}
	// Missing vs empty relation are equal.
	a.Get("q", 1)
	if !a.EqualOn(b, []string{"q"}) || !b.EqualOn(a, []string{"q"}) {
		t.Error("empty vs missing relation mismatch")
	}
	// Missing vs nonempty differ, both directions.
	a.InsertAll("r", [][]ast.Value{{9}})
	if a.EqualOn(b, []string{"r"}) || b.EqualOn(a, []string{"r"}) {
		t.Error("missing vs nonempty reported equal")
	}
	b.InsertAll("p", [][]ast.Value{{2}})
	if a.EqualOn(b, []string{"p"}) {
		t.Error("different relations reported equal")
	}
}

func TestStoreTotalTuples(t *testing.T) {
	s := Store{}
	s.InsertAll("p", [][]ast.Value{{1}, {2}})
	s.InsertAll("q", [][]ast.Value{{1, 1}})
	if got := s.TotalTuples(); got != 3 {
		t.Errorf("TotalTuples = %d", got)
	}
}
