package relation

import (
	"reflect"
	"testing"

	"parlog/internal/ast"
)

func drain(it Iterator) []Tuple {
	var out []Tuple
	for {
		tup := it.Next()
		if tup == nil {
			return out
		}
		// Copy: tuples are live arena views.
		out = append(out, append(Tuple(nil), tup...))
	}
}

func pairRel(pairs ...[2]int) *Relation {
	r := New(2)
	for _, p := range pairs {
		r.Insert(Tuple{ast.Value(p[0]), ast.Value(p[1])})
	}
	return r
}

func TestScanWindow(t *testing.T) {
	r := pairRel([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	if got := drain(Scan(r, 0, r.Len())); len(got) != 3 {
		t.Fatalf("full scan returned %d tuples", len(got))
	}
	got := drain(Scan(r, 1, 2))
	want := []Tuple{{1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window scan = %v, want %v", got, want)
	}
	if got := drain(Scan(r, 2, 100)); len(got) != 1 {
		t.Fatalf("clamped scan returned %d tuples", len(got))
	}
	if got := drain(Scan(nil, 0, 5)); len(got) != 0 {
		t.Fatalf("nil relation scan returned %d tuples", len(got))
	}
}

func TestProbeStream(t *testing.T) {
	r := pairRel([2]int{0, 1}, [2]int{0, 2}, [2]int{1, 2}, [2]int{0, 3})
	got := drain(Probe(r, []int{0}, []ast.Value{0}, 0, r.Len()))
	want := []Tuple{{0, 1}, {0, 2}, {0, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("probe = %v, want %v", got, want)
	}
	// Window restriction: only rows [1, 3).
	got = drain(Probe(r, []int{0}, []ast.Value{0}, 1, 3))
	want = []Tuple{{0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed probe = %v, want %v", got, want)
	}
	if got := drain(Probe(r, []int{0}, []ast.Value{9}, 0, r.Len())); len(got) != 0 {
		t.Fatalf("miss probe returned %d tuples", len(got))
	}
	if got := drain(Probe(r, nil, nil, 0, r.Len())); len(got) != 4 {
		t.Fatalf("no-column probe (scan) returned %d tuples", len(got))
	}
	if got := drain(Probe(nil, []int{0}, []ast.Value{0}, 0, 5)); len(got) != 0 {
		t.Fatalf("nil relation probe returned %d tuples", len(got))
	}
}

func TestSelectStream(t *testing.T) {
	r := pairRel([2]int{0, 0}, [2]int{1, 2}, [2]int{3, 3}, [2]int{4, 5})
	diag := Select(Scan(r, 0, r.Len()), func(tup Tuple) bool { return tup[0] == tup[1] })
	got := drain(diag)
	want := []Tuple{{0, 0}, {3, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("select = %v, want %v", got, want)
	}
}

func TestIndexProbeRunWindow(t *testing.T) {
	r := pairRel([2]int{7, 1}, [2]int{7, 2}, [2]int{8, 1}, [2]int{7, 3})
	ix := r.IndexOn(0)
	run := ix.Probe([]ast.Value{7}, 0, r.Len())
	if want := []int32{0, 1, 3}; !reflect.DeepEqual(run, want) {
		t.Fatalf("full run = %v, want %v", run, want)
	}
	if run := ix.Probe([]ast.Value{7}, 1, 3); !reflect.DeepEqual(run, []int32{1}) {
		t.Fatalf("windowed run = %v", run)
	}
	if run := ix.Probe([]ast.Value{99}, 0, r.Len()); len(run) != 0 {
		t.Fatalf("miss run = %v", run)
	}
}
