package relation

import (
	"fmt"
	"sort"

	"parlog/internal/ast"
)

// Store maps predicate names to relations. Both engines read EDB relations
// from a Store and accumulate IDB relations into one.
type Store map[string]*Relation

// Get returns the relation for pred, creating an empty one of the given
// arity on first use. It panics if the existing relation has a different
// arity (an engine bug, not a data error).
func (s Store) Get(pred string, arity int) *Relation {
	r, ok := s[pred]
	if !ok {
		r = New(arity)
		s[pred] = r
		return r
	}
	if r.Arity() != arity {
		panic(fmt.Sprintf("relation: predicate %s stored with arity %d, requested %d", pred, r.Arity(), arity))
	}
	return r
}

// GetChecked is Get for boundaries that receive caller-supplied data (user
// EDB stores, CSV loads): an arity mismatch with an existing relation is a
// data error there, not an engine bug, so it is returned instead of
// panicking and the existing relation is left untouched.
func (s Store) GetChecked(pred string, arity int) (*Relation, error) {
	if r, ok := s[pred]; ok && r.Arity() != arity {
		return nil, fmt.Errorf("relation: predicate %s stored with arity %d, requested %d", pred, r.Arity(), arity)
	}
	return s.Get(pred, arity), nil
}

// Clone deep-copies the store.
func (s Store) Clone() Store {
	out := make(Store, len(s))
	for k, r := range s {
		out[k] = r.Clone()
	}
	return out
}

// InsertAll inserts tuples into pred's relation, creating it if needed, and
// returns the number of new tuples.
func (s Store) InsertAll(pred string, tuples [][]ast.Value) int {
	if len(tuples) == 0 {
		if _, ok := s[pred]; !ok {
			return 0
		}
	}
	added := 0
	for _, t := range tuples {
		r, ok := s[pred]
		if !ok {
			r = New(len(t))
			s[pred] = r
		}
		if r.Insert(t) {
			added++
		}
	}
	return added
}

// Preds returns the sorted predicate names.
func (s Store) Preds() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EqualOn reports whether s and t agree on the given predicates, treating a
// missing relation as empty.
func (s Store) EqualOn(t Store, preds []string) bool {
	for _, p := range preds {
		a, b := s[p], t[p]
		switch {
		case a == nil && b == nil:
		case a == nil:
			if b.Len() != 0 {
				return false
			}
		case b == nil:
			if a.Len() != 0 {
				return false
			}
		default:
			if !a.Equal(b) {
				return false
			}
		}
	}
	return true
}

// TotalTuples sums the sizes of all relations.
func (s Store) TotalTuples() int {
	n := 0
	for _, r := range s {
		n += r.Len()
	}
	return n
}
