package ast

import (
	"testing"
	"testing/quick"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alice")
	b := in.Intern("bob")
	if a == b {
		t.Fatalf("distinct constants interned to the same value: %d", a)
	}
	if got := in.Intern("alice"); got != a {
		t.Errorf("re-interning alice: got %d want %d", got, a)
	}
	if got := in.Name(a); got != "alice" {
		t.Errorf("Name(%d) = %q, want alice", a, got)
	}
	if got := in.Name(b); got != "bob" {
		t.Errorf("Name(%d) = %q, want bob", b, got)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if _, ok := in.Lookup("carol"); ok {
		t.Error("Lookup(carol) reported present before interning")
	}
}

func TestInternerDenseValues(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 100; i++ {
		v := in.InternInt(i)
		if int(v) != i {
			t.Fatalf("InternInt(%d) = %d, want dense value %d", i, v, i)
		}
	}
}

func TestInternerNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name on un-interned value did not panic")
		}
	}()
	NewInterner().Name(5)
}

func TestTermKinds(t *testing.T) {
	v := V("X")
	if !v.IsVar() {
		t.Error("V(X) is not a variable")
	}
	c := C(7)
	if c.IsVar() {
		t.Error("C(7) is a variable")
	}
	if v.String() != "X" {
		t.Errorf("V(X).String() = %q", v.String())
	}
	if c.String() != "$7" {
		t.Errorf("C(7).String() = %q", c.String())
	}
	if C(-3).String() != "$-3" {
		t.Errorf("C(-3).String() = %q", C(-3).String())
	}
}

func TestAtomVarsOrderAndDedup(t *testing.T) {
	a := NewAtom("p", V("X"), C(1), V("Y"), V("X"))
	vars := a.Vars(nil)
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Errorf("Vars = %v, want [X Y]", vars)
	}
	if !a.HasVar("Y") || a.HasVar("Z") {
		t.Error("HasVar misreported")
	}
	if a.IsGround() {
		t.Error("atom with variables reported ground")
	}
	if !NewAtom("p", C(1), C(2)).IsGround() {
		t.Error("ground atom not reported ground")
	}
}

func TestAtomApplyPartial(t *testing.T) {
	a := NewAtom("p", V("X"), V("Y"))
	got := a.Apply(Subst{"X": 3})
	if got.Args[0].IsVar() || got.Args[0].Value != 3 {
		t.Errorf("X not substituted: %v", got)
	}
	if !got.Args[1].IsVar() {
		t.Errorf("unbound Y was substituted: %v", got)
	}
	// The original atom must be untouched.
	if !a.Args[0].IsVar() {
		t.Error("Apply mutated the receiver")
	}
}

func TestAtomRename(t *testing.T) {
	a := NewAtom("p", V("X"), C(1))
	got := a.Rename(func(s string) string { return s + "'" })
	if got.Args[0].VarName != "X'" {
		t.Errorf("rename: %v", got)
	}
	if a.Args[0].VarName != "X" {
		t.Error("Rename mutated the receiver")
	}
}

func TestSubstBind(t *testing.T) {
	s := Subst{}
	if !s.Bind("X", 1) {
		t.Fatal("fresh bind failed")
	}
	if !s.Bind("X", 1) {
		t.Error("consistent rebind failed")
	}
	if s.Bind("X", 2) {
		t.Error("conflicting rebind succeeded")
	}
	if !s.Covers([]string{"X"}) || s.Covers([]string{"X", "Y"}) {
		t.Error("Covers misreported")
	}
}

func TestSubstStringDeterministic(t *testing.T) {
	s := Subst{"B": 2, "A": 1}
	if got := s.String(); got != "{A/$1, B/$2}" {
		t.Errorf("String() = %q", got)
	}
}

func TestMatchAtom(t *testing.T) {
	cases := []struct {
		name  string
		atom  Atom
		tuple []Value
		pre   Subst
		ok    bool
		check func(Subst) bool
	}{
		{
			name: "binds fresh vars", atom: NewAtom("p", V("X"), V("Y")),
			tuple: []Value{1, 2}, pre: Subst{}, ok: true,
			check: func(s Subst) bool { return s["X"] == 1 && s["Y"] == 2 },
		},
		{
			name: "repeated var must agree", atom: NewAtom("p", V("X"), V("X")),
			tuple: []Value{1, 2}, pre: Subst{}, ok: false,
		},
		{
			name: "repeated var agrees", atom: NewAtom("p", V("X"), V("X")),
			tuple: []Value{3, 3}, pre: Subst{}, ok: true,
			check: func(s Subst) bool { return s["X"] == 3 },
		},
		{
			name: "constant mismatch", atom: NewAtom("p", C(9), V("Y")),
			tuple: []Value{1, 2}, pre: Subst{}, ok: false,
		},
		{
			name: "constant match", atom: NewAtom("p", C(1), V("Y")),
			tuple: []Value{1, 2}, pre: Subst{}, ok: true,
		},
		{
			name: "existing binding conflicts", atom: NewAtom("p", V("X")),
			tuple: []Value{5}, pre: Subst{"X": 4}, ok: false,
		},
		{
			name: "arity mismatch", atom: NewAtom("p", V("X")),
			tuple: []Value{1, 2}, pre: Subst{}, ok: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MatchAtom(tc.atom, tc.tuple, tc.pre)
			if got != tc.ok {
				t.Fatalf("MatchAtom = %v, want %v", got, tc.ok)
			}
			if tc.ok && tc.check != nil && !tc.check(tc.pre) {
				t.Errorf("bindings wrong: %v", tc.pre)
			}
		})
	}
}

func TestRuleSafety(t *testing.T) {
	// anc(X,Y) :- par(X,Z), anc(Z,Y). — safe
	r := NewRule(
		NewAtom("anc", V("X"), V("Y")),
		NewAtom("par", V("X"), V("Z")),
		NewAtom("anc", V("Z"), V("Y")),
	)
	if !r.IsSafe() {
		t.Error("safe rule reported unsafe")
	}
	// p(X,W) :- q(X). — W not in body
	bad := NewRule(NewAtom("p", V("X"), V("W")), NewAtom("q", V("X")))
	if bad.IsSafe() {
		t.Error("unsafe rule reported safe")
	}
	// Constraint variable not in body is unsafe too.
	h := &HashFunc{Name: "h", Fn: func([]Value) int { return 0 }}
	c := NewRule(NewAtom("p", V("X")), NewAtom("q", V("X"))).
		WithConstraints(NewHashConstraint(h, []string{"Z"}, 0))
	if c.IsSafe() {
		t.Error("rule with dangling constraint var reported safe")
	}
}

func TestRuleVarsOrder(t *testing.T) {
	r := NewRule(
		NewAtom("p", V("A"), V("B")),
		NewAtom("q", V("B"), V("C")),
	)
	vars := r.Vars()
	want := []string{"A", "B", "C"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestRuleCloneIndependence(t *testing.T) {
	r := NewRule(NewAtom("p", V("X")), NewAtom("q", V("X")))
	c := r.Clone()
	c.Body[0].Args[0] = C(1)
	if !r.Body[0].Args[0].IsVar() {
		t.Error("Clone shares body args")
	}
}

func TestRuleRenameRewritesConstraints(t *testing.T) {
	h := &HashFunc{Name: "h", Fn: func(v []Value) int { return int(v[0]) }}
	r := NewRule(NewAtom("p", V("X")), NewAtom("q", V("X"))).
		WithConstraints(NewHashConstraint(h, []string{"X"}, 1))
	renamed := r.Rename(func(s string) string { return s + "_2" })
	hc := renamed.Constraints[0].(*HashConstraint)
	if hc.Args[0] != "X_2" {
		t.Errorf("constraint var not renamed: %v", hc.Args)
	}
	// Original untouched.
	if r.Constraints[0].(*HashConstraint).Args[0] != "X" {
		t.Error("Rename mutated the receiver's constraint")
	}
}

func TestHashConstraintHolds(t *testing.T) {
	h := &HashFunc{Name: "h", Fn: func(v []Value) int { return int(v[0]) % 2 }}
	c := NewHashConstraint(h, []string{"X"}, 1)
	if !c.Holds(Subst{"X": 3}) {
		t.Error("h(3)=1 should hold for proc 1")
	}
	if c.Holds(Subst{"X": 4}) {
		t.Error("h(4)=0 should not hold for proc 1")
	}
	if got := c.String(); got != "h(X) = 1" {
		t.Errorf("String = %q", got)
	}
}

func TestHashConstraintPanicsOnUnbound(t *testing.T) {
	h := &HashFunc{Name: "h", Fn: func([]Value) int { return 0 }}
	c := NewHashConstraint(h, []string{"X"}, 0)
	defer func() {
		if recover() == nil {
			t.Error("Holds with unbound variable did not panic")
		}
	}()
	c.Holds(Subst{})
}

func TestProgramEDBIDBSplit(t *testing.T) {
	p := NewProgram()
	a := p.Interner.Intern("a")
	b := p.Interner.Intern("b")
	p.AddRule(NewRule(NewAtom("anc", V("X"), V("Y")), NewAtom("par", V("X"), V("Y"))))
	p.AddRule(NewRule(
		NewAtom("anc", V("X"), V("Y")),
		NewAtom("par", V("X"), V("Z")), NewAtom("anc", V("Z"), V("Y")),
	))
	p.AddRule(NewRule(NewAtom("par", C(a), C(b)))) // fact
	idb := p.IDBPreds()
	if len(idb) != 1 || idb[0] != "anc" {
		t.Errorf("IDB = %v", idb)
	}
	edb := p.EDBPreds()
	if len(edb) != 1 || edb[0] != "par" {
		t.Errorf("EDB = %v", edb)
	}
	rules, facts := p.FactTuples()
	if len(rules) != 2 {
		t.Errorf("proper rules = %d, want 2", len(rules))
	}
	if got := facts["par"]; len(got) != 1 || got[0][0] != a || got[0][1] != b {
		t.Errorf("facts[par] = %v", got)
	}
}

func TestProgramFormat(t *testing.T) {
	p := NewProgram()
	a := p.Interner.Intern("a")
	p.AddRule(NewRule(NewAtom("anc", V("X"), V("Y")),
		NewAtom("par", V("X"), V("Z")), NewAtom("anc", V("Z"), V("Y"))))
	p.AddRule(NewRule(NewAtom("par", C(a), C(a))))
	want := "anc(X, Y) :- par(X, Z), anc(Z, Y).\npar(a, a).\n"
	if got := p.String(); got != want {
		t.Errorf("String =\n%q\nwant\n%q", got, want)
	}
}

func TestProgramArities(t *testing.T) {
	p := NewProgram()
	p.AddRule(NewRule(NewAtom("anc", V("X"), V("Y")), NewAtom("par", V("X"), V("Y"))))
	ar := p.Arities()
	if ar["anc"] != 2 || ar["par"] != 2 {
		t.Errorf("Arities = %v", ar)
	}
}

// Property: MatchAtom on an all-variable atom with distinct vars always
// succeeds and reproduces the tuple through Apply.
func TestMatchApplyRoundTripProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true // skip out-of-shape inputs
		}
		tuple := make([]Value, len(raw))
		args := make([]Term, len(raw))
		for i, r := range raw {
			v := Value(r)
			if v < 0 {
				v = -v
			}
			tuple[i] = v
			args[i] = V("X" + itoa(i))
		}
		a := Atom{Pred: "p", Args: args}
		sub := Subst{}
		if !MatchAtom(a, tuple, sub) {
			return false
		}
		back := a.Apply(sub)
		for i := range tuple {
			if back.Args[i].IsVar() || back.Args[i].Value != tuple[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("p", V("X"), C(3))
	if got := a.String(); got != "p(X, $3)" {
		t.Errorf("String = %q", got)
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule(NewAtom("p", V("X")), NewAtom("q", V("X")))
	if got := r.String(); got != "p(X) :- q(X)." {
		t.Errorf("String = %q", got)
	}
	fact := NewRule(NewAtom("p", C(1)))
	if got := fact.String(); got != "p($1)." {
		t.Errorf("fact String = %q", got)
	}
	h := &HashFunc{Name: "h", Fn: func([]Value) int { return 0 }}
	withC := r.WithConstraints(NewHashConstraint(h, []string{"X"}, 2))
	if got := withC.String(); got != "p(X) :- q(X), h(X) = 2." {
		t.Errorf("constrained String = %q", got)
	}
}

func TestSubstCloneLookup(t *testing.T) {
	s := Subst{"X": 4}
	c := s.Clone()
	c["Y"] = 5
	if _, ok := s.Lookup("Y"); ok {
		t.Error("Clone shares the map")
	}
	if v, ok := s.Lookup("X"); !ok || v != 4 {
		t.Errorf("Lookup(X) = %d, %v", v, ok)
	}
}

func TestProgramClone(t *testing.T) {
	p := NewProgram()
	p.AddRule(NewRule(NewAtom("p", V("X")), NewAtom("q", V("X"))))
	c := p.Clone()
	c.Rules[0].Body[0].Args[0] = C(9)
	if !p.Rules[0].Body[0].Args[0].IsVar() {
		t.Error("Clone shares rule storage")
	}
	if c.Interner != p.Interner {
		t.Error("Clone should share the append-only interner")
	}
}

func TestQuoteConst(t *testing.T) {
	cases := map[string]string{
		"abc":       "abc",
		"a_B9'x":    "a_B9'x",
		"42":        "42",
		"-7":        "-7",
		"":          `""`,
		"Upper":     `"Upper"`,
		"_x":        `"_x"`,
		"has space": `"has space"`,
		"42abc":     `"42abc"`,
		"-":         `"-"`,
		"a-b":       `"a-b"`,
		"tab\there": `"tab\there"`,
		"q\"uote":   `"q\"uote"`,
		"back\\s":   `"back\\s"`,
		"nl\nhere":  `"nl\nhere"`,
		"päö":       `"päö"`,
	}
	for in, want := range cases {
		if got := QuoteConst(in); got != want {
			t.Errorf("QuoteConst(%q) = %q, want %q", in, got, want)
		}
	}
}
