// Package ast defines the abstract syntax of Datalog programs: interned
// constants, terms, atoms, rules, constraints and programs. It is the common
// vocabulary shared by the parser, the analyses, the rewriting schemes of
// Ganguly–Silberschatz–Tsur (SIGMOD 1990) and both evaluation engines.
package ast

import "fmt"

// Value is an interned constant. Two constants are equal iff their Values are
// equal, which makes tuples of Values directly comparable and hashable.
type Value int32

// NoValue is the zero Value; it never names an interned constant.
const NoValue Value = -1

// Interner maps constant spellings to dense Values and back. The zero value
// is not usable; create one with NewInterner. An Interner is not safe for
// concurrent mutation; the engines intern all constants up front and only
// read afterwards.
type Interner struct {
	byName map[string]Value
	names  []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byName: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one on first use.
func (in *Interner) Intern(name string) Value {
	if v, ok := in.byName[name]; ok {
		return v
	}
	v := Value(len(in.names))
	in.byName[name] = v
	in.names = append(in.names, name)
	return v
}

// Lookup returns the Value for name if it has been interned.
func (in *Interner) Lookup(name string) (Value, bool) {
	v, ok := in.byName[name]
	return v, ok
}

// Name returns the spelling of v. It panics if v was not produced by this
// interner.
func (in *Interner) Name(v Value) string {
	if v < 0 || int(v) >= len(in.names) {
		panic(fmt.Sprintf("ast: Value %d not interned", v))
	}
	return in.names[v]
}

// Len reports the number of distinct constants interned so far.
func (in *Interner) Len() int { return len(in.names) }

// InternInt interns the decimal spelling of n. Integers in Datalog source are
// ordinary constants; this helper keeps their spelling canonical.
func (in *Interner) InternInt(n int) Value {
	return in.Intern(fmt.Sprintf("%d", n))
}
