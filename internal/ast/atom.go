package ast

import "strings"

// Atom is a predicate symbol applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars appends the distinct variables of a, in order of first occurrence, to
// dst and returns the extended slice.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if !t.IsVar() {
			continue
		}
		if !containsStr(dst, t.VarName) {
			dst = append(dst, t.VarName)
		}
	}
	return dst
}

// HasVar reports whether variable name occurs in a.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Args {
		if t.VarName == name {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of a.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Rename returns a copy of a with every variable renamed through f.
func (a Atom) Rename(f func(string) string) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsVar() {
			out.Args[i] = V(f(t.VarName))
		}
	}
	return out
}

// Apply returns a copy of a with variables bound by sub replaced by their
// constants. Unbound variables are left intact, so Apply works for partial
// substitutions too.
func (a Atom) Apply(sub Subst) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsVar() {
			if v, ok := sub[t.VarName]; ok {
				out.Args[i] = C(v)
			}
		}
	}
	return out
}

// String renders the atom with raw constant ids; use Program.FormatAtom for
// spelled-out constants.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
