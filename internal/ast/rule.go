package ast

import "strings"

// Rule is "Head :- Body, !Negated, Constraints". A rule with an empty body
// is a fact when its head is ground. Constraints never bind variables; they
// only filter ground substitutions produced by matching the body, which
// keeps rewritten programs safe (Section 2's safety requirement). Negated
// atoms (an extension beyond the paper's pure Datalog) are filters too:
// under stratified semantics a substitution survives only if the ground
// negated atom is absent from the (completed, lower-stratum) relation.
type Rule struct {
	Head        Atom
	Body        []Atom
	Negated     []Atom
	Constraints []Constraint
}

// NewRule builds a rule.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{Head: head, Body: body}
}

// WithConstraints returns a copy of r with the constraints appended.
func (r Rule) WithConstraints(cs ...Constraint) Rule {
	out := r.Clone()
	out.Constraints = append(out.Constraints, cs...)
	return out
}

// IsFact reports whether r is a ground fact.
func (r Rule) IsFact() bool {
	return len(r.Body) == 0 && len(r.Negated) == 0 && len(r.Constraints) == 0 && r.Head.IsGround()
}

// Vars returns the distinct variables of r in order of first occurrence
// (head first, then body, then constraints).
func (r Rule) Vars() []string {
	var vars []string
	vars = r.Head.Vars(vars)
	for _, a := range r.Body {
		vars = a.Vars(vars)
	}
	for _, a := range r.Negated {
		vars = a.Vars(vars)
	}
	for _, c := range r.Constraints {
		for _, v := range c.Vars() {
			if !containsStr(vars, v) {
				vars = append(vars, v)
			}
		}
	}
	return vars
}

// BodyVars returns the distinct variables occurring in body atoms.
func (r Rule) BodyVars() []string {
	var vars []string
	for _, a := range r.Body {
		vars = a.Vars(vars)
	}
	return vars
}

// IsSafe reports whether every head variable, every negated-atom variable
// and every constraint variable occurs in the positive body — the paper's
// safety property (extended to negation in the standard way), guaranteeing
// finitely many answers and ground negation probes.
func (r Rule) IsSafe() bool {
	bv := r.BodyVars()
	for _, v := range r.Head.Vars(nil) {
		if !containsStr(bv, v) {
			return false
		}
	}
	for _, a := range r.Negated {
		for _, v := range a.Vars(nil) {
			if !containsStr(bv, v) {
				return false
			}
		}
	}
	for _, c := range r.Constraints {
		for _, v := range c.Vars() {
			if !containsStr(bv, v) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of r (constraints are shared; they are
// immutable).
func (r Rule) Clone() Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Clone()
	}
	var neg []Atom
	if len(r.Negated) > 0 {
		neg = make([]Atom, len(r.Negated))
		for i, a := range r.Negated {
			neg[i] = a.Clone()
		}
	}
	cs := make([]Constraint, len(r.Constraints))
	copy(cs, r.Constraints)
	return Rule{Head: r.Head.Clone(), Body: body, Negated: neg, Constraints: cs}
}

// Rename returns a copy of r with all variables renamed through f.
func (r Rule) Rename(f func(string) string) Rule {
	out := r.Clone()
	out.Head = out.Head.Rename(f)
	for i, a := range out.Body {
		out.Body[i] = a.Rename(f)
	}
	for i, a := range out.Negated {
		out.Negated[i] = a.Rename(f)
	}
	// Constraints hold variable names by value; rebuild hash constraints.
	for i, c := range out.Constraints {
		if hc, ok := c.(*HashConstraint); ok {
			args := make([]string, len(hc.Args))
			for j, a := range hc.Args {
				args[j] = f(a)
			}
			out.Constraints[i] = NewHashConstraint(hc.H, args, hc.Proc)
		}
	}
	return out
}

// String renders the rule with raw constant ids; use Program.FormatRule for
// spelled-out constants.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) == 0 && len(r.Negated) == 0 && len(r.Constraints) == 0 {
		b.WriteByte('.')
		return b.String()
	}
	b.WriteString(" :- ")
	sep := false
	for _, a := range r.Body {
		if sep {
			b.WriteString(", ")
		}
		sep = true
		b.WriteString(a.String())
	}
	for _, a := range r.Negated {
		if sep {
			b.WriteString(", ")
		}
		sep = true
		b.WriteByte('!')
		b.WriteString(a.String())
	}
	for _, c := range r.Constraints {
		if sep {
			b.WriteString(", ")
		}
		sep = true
		b.WriteString(c.String())
	}
	b.WriteByte('.')
	return b.String()
}
