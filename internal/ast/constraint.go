package ast

import (
	"fmt"
	"strings"
)

// Constraint is a side condition attached to a rule body, such as the
// discriminating-function conditions "h(v(r)) = i" that the paper's rewriting
// schemes add to processing, initialization and sending rules. Constraints
// are evaluated on (partially) ground substitutions, never enumerated, so the
// rewritten programs remain safe.
type Constraint interface {
	// Vars returns the variables the constraint reads.
	Vars() []string
	// Holds evaluates the constraint under sub. It must only be called when
	// sub binds every variable in Vars.
	Holds(sub Subst) bool
	// String renders the constraint for program listings.
	String() string
}

// HashFunc is a named, pure function from a ground instance of a
// discriminating sequence to a processor number — the paper's h, h' and h_i.
type HashFunc struct {
	// Name identifies the function in listings, e.g. "h" or "h_3".
	Name string
	// Fn maps the ground instance of the discriminating sequence to a
	// processor. It must be deterministic.
	Fn func(vals []Value) int
}

// HashConstraint is the atom "H(vars) = Proc".
type HashConstraint struct {
	H    *HashFunc
	Args []string // the discriminating sequence v(r), as variable names
	Proc int
}

// NewHashConstraint builds the constraint h(args...) = proc.
func NewHashConstraint(h *HashFunc, args []string, proc int) *HashConstraint {
	return &HashConstraint{H: h, Args: args, Proc: proc}
}

// Vars implements Constraint.
func (c *HashConstraint) Vars() []string { return c.Args }

// Holds implements Constraint.
func (c *HashConstraint) Holds(sub Subst) bool {
	vals := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, ok := sub[a]
		if !ok {
			panic(fmt.Sprintf("ast: HashConstraint %s evaluated with unbound %s", c, a))
		}
		vals[i] = v
	}
	return c.H.Fn(vals) == c.Proc
}

// String implements Constraint.
func (c *HashConstraint) String() string {
	return fmt.Sprintf("%s(%s) = %d", c.H.Name, strings.Join(c.Args, ", "), c.Proc)
}
