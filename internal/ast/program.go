package ast

import (
	"sort"
	"strings"
)

// Program is a finite set of rules sharing one constant interner. Facts may
// be represented either as ground empty-body rules or held externally in a
// relation store; the parser produces the former and SplitFacts converts.
type Program struct {
	Rules    []Rule
	Interner *Interner
}

// NewProgram returns an empty program with a fresh interner.
func NewProgram() *Program {
	return &Program{Interner: NewInterner()}
}

// AddRule appends a rule.
func (p *Program) AddRule(r Rule) { p.Rules = append(p.Rules, r) }

// Clone returns a deep copy of the program sharing the interner (the
// interner is append-only, so sharing is safe for readers).
func (p *Program) Clone() *Program {
	out := &Program{Interner: p.Interner, Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		out.Rules[i] = r.Clone()
	}
	return out
}

// IDBPreds returns the derived (intensional) predicate names: those occurring
// in some rule head that is not a fact, plus heads of facts whose predicate
// also heads a proper rule. Sorted for determinism.
func (p *Program) IDBPreds() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		if !r.IsFact() {
			set[r.Head.Pred] = true
		}
	}
	return sortedKeys(set)
}

// EDBPreds returns the base (extensional) predicate names: those occurring in
// rule bodies or fact heads but never in a proper rule head. Sorted.
func (p *Program) EDBPreds() []string {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		if !r.IsFact() {
			idb[r.Head.Pred] = true
		}
	}
	set := make(map[string]bool)
	for _, r := range p.Rules {
		if r.IsFact() && !idb[r.Head.Pred] {
			set[r.Head.Pred] = true
		}
		for _, a := range r.Body {
			if !idb[a.Pred] {
				set[a.Pred] = true
			}
		}
		for _, a := range r.Negated {
			if !idb[a.Pred] {
				set[a.Pred] = true
			}
		}
	}
	return sortedKeys(set)
}

// Arities returns the arity of every predicate mentioned in the program. It
// returns an error-free map; arity conflicts are the parser's and analysis'
// concern.
func (p *Program) Arities() map[string]int {
	m := make(map[string]int)
	for _, r := range p.Rules {
		m[r.Head.Pred] = r.Head.Arity()
		for _, a := range r.Body {
			m[a.Pred] = a.Arity()
		}
		for _, a := range r.Negated {
			m[a.Pred] = a.Arity()
		}
	}
	return m
}

// FormatTerm renders t with constants spelled out through the interner.
// Constant spellings that would not re-lex as a single constant token (or
// would lex as a variable) are quoted, so printing and re-parsing a program
// is a fixpoint.
func (p *Program) FormatTerm(t Term) string {
	if t.IsVar() {
		return t.VarName
	}
	return QuoteConst(p.Interner.Name(t.Value))
}

// QuoteConst returns name if it lexes as a bare constant (lower-case-initial
// identifier or integer literal), and a quoted string literal otherwise.
func QuoteConst(name string) string {
	if isBareConst(name) {
		return name
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(name); i++ {
		switch c := name[i]; c {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// isBareConst reports whether name lexes as one constant token: a
// lower-case-ASCII-initial identifier of ASCII identifier characters, or an
// optionally negated decimal integer.
func isBareConst(name string) bool {
	if name == "" {
		return false
	}
	// Integer literal.
	digits := name
	if name[0] == '-' {
		digits = name[1:]
	}
	if len(digits) > 0 {
		numeric := true
		for i := 0; i < len(digits); i++ {
			if digits[i] < '0' || digits[i] > '9' {
				numeric = false
				break
			}
		}
		if numeric {
			return true
		}
	}
	// Lower-case identifier. Stick to ASCII: the lexer's byte-wise letter
	// test treats multi-byte UTF-8 inconsistently, so anything non-ASCII is
	// safer quoted.
	if name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '\'':
		default:
			return false
		}
	}
	return true
}

// FormatAtom renders a with constants spelled out.
func (p *Program) FormatAtom(a Atom) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.FormatTerm(t))
	}
	b.WriteByte(')')
	return b.String()
}

// FormatRule renders r with constants spelled out.
func (p *Program) FormatRule(r Rule) string {
	var b strings.Builder
	b.WriteString(p.FormatAtom(r.Head))
	if len(r.Body) == 0 && len(r.Negated) == 0 && len(r.Constraints) == 0 {
		b.WriteByte('.')
		return b.String()
	}
	b.WriteString(" :- ")
	sep := false
	for _, a := range r.Body {
		if sep {
			b.WriteString(", ")
		}
		sep = true
		b.WriteString(p.FormatAtom(a))
	}
	for _, a := range r.Negated {
		if sep {
			b.WriteString(", ")
		}
		sep = true
		b.WriteByte('!')
		b.WriteString(p.FormatAtom(a))
	}
	for _, c := range r.Constraints {
		if sep {
			b.WriteString(", ")
		}
		sep = true
		b.WriteString(c.String())
	}
	b.WriteByte('.')
	return b.String()
}

// String renders the whole program, one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(p.FormatRule(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// FactTuples extracts the ground facts of the program, grouped by predicate,
// and returns the program's proper (non-fact) rules. The original program is
// not modified.
func (p *Program) FactTuples() (rules []Rule, facts map[string][][]Value) {
	facts = make(map[string][][]Value)
	for _, r := range p.Rules {
		if r.IsFact() {
			tuple := make([]Value, r.Head.Arity())
			for i, t := range r.Head.Args {
				tuple[i] = t.Value
			}
			facts[r.Head.Pred] = append(facts[r.Head.Pred], tuple)
			continue
		}
		rules = append(rules, r.Clone())
	}
	return rules, facts
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
