package ast

// Term is an argument of an atom: either a variable or an interned constant.
// The zero Term is the constant NoValue, which is never a legal argument, so
// accidental zero Terms surface quickly.
type Term struct {
	// VarName is the variable's name, or "" if the term is a constant.
	VarName string
	// Value is the interned constant when VarName is empty.
	Value Value
}

// V returns a variable term.
func V(name string) Term { return Term{VarName: name} }

// C returns a constant term.
func C(v Value) Term { return Term{Value: v} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.VarName != "" }

// String renders a variable by name and a constant as $<id>; use
// Program.FormatTerm for spelled-out constants.
func (t Term) String() string {
	if t.IsVar() {
		return t.VarName
	}
	return "$" + itoa(int(t.Value))
}

// itoa is a minimal integer formatter so that Term.String does not pull fmt
// into every call site's escape analysis.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
