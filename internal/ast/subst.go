package ast

import (
	"sort"
	"strings"
)

// Subst is a ground substitution: a finite map from variable names to
// constants, as in Section 2 of the paper. The engines build substitutions
// incrementally during joins.
type Subst map[string]Value

// Clone returns an independent copy of s.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Bind extends s with name ↦ v. It reports false (leaving s unchanged) when
// name is already bound to a different constant.
func (s Subst) Bind(name string, v Value) bool {
	if old, ok := s[name]; ok {
		return old == v
	}
	s[name] = v
	return true
}

// Lookup returns the binding for name.
func (s Subst) Lookup(name string) (Value, bool) {
	v, ok := s[name]
	return v, ok
}

// Covers reports whether every variable in vars is bound by s.
func (s Subst) Covers(vars []string) bool {
	for _, v := range vars {
		if _, ok := s[v]; !ok {
			return false
		}
	}
	return true
}

// String renders the substitution deterministically (sorted by variable).
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteByte('/')
		b.WriteString("$" + itoa(int(s[k])))
	}
	b.WriteByte('}')
	return b.String()
}

// MatchAtom unifies a (possibly non-ground) atom against a ground tuple,
// extending sub. It reports false if the predicate arities differ or a
// variable would need two distinct constants or a constant argument
// disagrees. On failure sub may be partially extended; callers that need
// rollback should pass a clone.
func MatchAtom(a Atom, tuple []Value, sub Subst) bool {
	if len(a.Args) != len(tuple) {
		return false
	}
	for i, t := range a.Args {
		if t.IsVar() {
			if !sub.Bind(t.VarName, tuple[i]) {
				return false
			}
		} else if t.Value != tuple[i] {
			return false
		}
	}
	return true
}
