package parlog

// One benchmark per experiment of the per-experiment index in DESIGN.md
// (E1–E13). The paper's evaluation is qualitative, so these benchmarks pin
// the cost of regenerating each figure/claim and the relative costs of the
// schemes; `go test -bench=. -benchmem` reproduces every number recorded in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"

	"parlog/internal/analysis"
	"parlog/internal/dist"
	"parlog/internal/hashpart"
	"parlog/internal/network"
	"parlog/internal/parallel"
	"parlog/internal/relation"
	"parlog/internal/rewrite"
	"parlog/internal/seminaive"
	"parlog/internal/termdetect"
	"parlog/internal/workload"
)

func benchSirup(b *testing.B) *analysis.Sirup {
	b.Helper()
	s, err := analysis.ExtractSirup(workload.AncestorProgram())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// --- baseline: sequential evaluation ---

func BenchmarkSequentialSemiNaive(b *testing.B) {
	for _, wl := range []struct {
		name string
		par  *relation.Relation
	}{
		{"chain200", workload.Chain(200)},
		{"random100x400", workload.RandomGraph(100, 400, 7)},
		{"tree3x6", workload.Tree(3, 6)},
	} {
		b.Run(wl.name, func(b *testing.B) {
			edb := relation.Store{"par": wl.par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := seminaive.Eval(workload.AncestorProgram(), edb, seminaive.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSequentialNaive is the semi-naive ablation: naive iteration
// recomputes every join each round.
func BenchmarkSequentialNaive(b *testing.B) {
	edb := relation.Store{"par": workload.Chain(60)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := seminaive.Eval(workload.AncestorProgram(), edb, seminaive.Options{Naive: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1/E2: dataflow graphs ---

func BenchmarkDataflowGraph(b *testing.B) {
	s, err := analysis.ExtractSirup(MustParse(`
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`).ast)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := network.NewDataflow(s)
		if g.Cycle() != nil {
			b.Fatal("unexpected cycle")
		}
	}
}

// --- E3/E4: network derivation ---

func BenchmarkNetworkDeriveExample6(b *testing.B) {
	s, err := analysis.ExtractSirup(MustParse(`
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`).ast)
	if err != nil {
		b.Fatal(err)
	}
	F := network.BitVectorF(2)
	procs := hashpart.RangeProcs(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := network.Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkDeriveExample7(b *testing.B) {
	s, err := analysis.ExtractSirup(MustParse(`
p(U, V, W) :- s(U, V, W).
p(U, V, W) :- p(V, W, Z), q(U, Z).
`).ast)
	if err != nil {
		b.Fatal(err)
	}
	F := network.LinearF([]int{1, -1, 1})
	procs := hashpart.NewProcSet(-1, 0, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := network.Derive(s, []string{"V", "W", "Z"}, []string{"U", "V", "W"}, F, F, procs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: Examples 1–3 ---

func benchQ(b *testing.B, vr, ve []string, h hashpart.Func, n int, edb relation.Store) {
	b.Helper()
	s := benchSirup(b)
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(n), VR: vr, VE: ve, H: h,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.Run(p, edb, parallel.RunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample1(b *testing.B) {
	edb := relation.Store{"par": workload.RandomGraph(100, 400, 7)}
	benchQ(b, []string{"Y"}, []string{"Y"}, hashpart.ModHash{N: 4}, 4, edb)
}

func BenchmarkExample2(b *testing.B) {
	par := workload.RandomGraph(100, 400, 7)
	frags := map[int]*relation.Relation{}
	for i := 0; i < 4; i++ {
		frags[i] = relation.New(2)
	}
	for k, t := range par.Rows() {
		frags[k%4].Insert(t)
	}
	h, err := hashpart.NewFragmentation(frags, hashpart.ModHash{N: 4})
	if err != nil {
		b.Fatal(err)
	}
	benchQ(b, []string{"X", "Z"}, []string{"X", "Y"}, h, 4, relation.Store{"par": par})
}

func BenchmarkExample3(b *testing.B) {
	edb := relation.Store{"par": workload.RandomGraph(100, 400, 7)}
	benchQ(b, []string{"Z"}, []string{"X"}, hashpart.ModHash{N: 4}, 4, edb)
}

// --- E6/E13: theorem verification cost (rewrite + declarative evaluation) ---

func BenchmarkTheoremCheckQ(b *testing.B) {
	prog := workload.AncestorProgram()
	s, err := analysis.ExtractSirup(prog)
	if err != nil {
		b.Fatal(err)
	}
	rw, err := rewrite.Q(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(3),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	edb := relation.Store{"par": workload.RandomGraph(30, 90, 3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := seminaive.Eval(rw.Program, edb, seminaive.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: trade-off sweep ---

func BenchmarkTradeoff(b *testing.B) {
	edb := relation.Store{"par": workload.RandomGraph(60, 240, 7)}
	shared := hashpart.ModHash{N: 4}
	for _, keep := range []int{0, 500, 1000} {
		keep := keep
		b.Run(fmt.Sprintf("locality%d", keep), func(b *testing.B) {
			s := benchSirup(b)
			p, err := parallel.BuildR(s, rewrite.RSpec{
				Procs: hashpart.RangeProcs(4),
				VR:    []string{"Z"}, VE: []string{"X"},
				HP: shared,
				HI: func(i int) hashpart.Func {
					return hashpart.Mix{Local: i, Shared: shared, KeepPermille: keep}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(p, edb, parallel.RunConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: Theorem 3 scheme ---

func BenchmarkTheorem3CommFree(b *testing.B) {
	s := benchSirup(b)
	spec, err := network.CommFree(s, hashpart.RangeProcs(4))
	if err != nil {
		b.Fatal(err)
	}
	p, err := parallel.BuildQ(s, *spec)
	if err != nil {
		b.Fatal(err)
	}
	edb := relation.Store{"par": workload.RandomGraph(100, 400, 7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := parallel.Run(p, edb, parallel.RunConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.TotalTuplesSent() != 0 {
			b.Fatal("communication in Theorem 3 scheme")
		}
	}
}

// --- E9: worker scaling ---

func BenchmarkSpeedupWorkers(b *testing.B) {
	edb := relation.Store{"par": workload.RandomGraph(150, 600, 11)}
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			s := benchSirup(b)
			p, err := parallel.BuildQ(s, rewrite.SirupSpec{
				Procs: hashpart.RangeProcs(n),
				VR:    []string{"Z"}, VE: []string{"X"},
				H: hashpart.ModHash{N: n},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(p, edb, parallel.RunConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: general scheme ---

func BenchmarkGeneralNonlinear(b *testing.B) {
	h := hashpart.ModHash{N: 4}
	p, err := parallel.BuildGeneral(workload.NonlinearAncestorProgram(), rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(4),
		Rules: []rewrite.RuleSpec{{Seq: []string{"Y"}, H: h}, {Seq: []string{"Z"}, H: h}},
	})
	if err != nil {
		b.Fatal(err)
	}
	edb := relation.Store{"par": workload.RandomGraph(60, 240, 13)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.Run(p, edb, parallel.RunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralSameGen(b *testing.B) {
	h := hashpart.ModHash{N: 4}
	p, err := parallel.BuildGeneral(workload.SameGenProgram(), rewrite.GeneralSpec{
		Procs: hashpart.RangeProcs(4),
		Rules: []rewrite.RuleSpec{{Seq: []string{"X"}, H: h}, {Seq: []string{"U"}, H: h}},
	})
	if err != nil {
		b.Fatal(err)
	}
	up, flat, down := workload.SameGenInput(3, 5)
	edb := relation.Store{"up": up, "flat": flat, "down": down}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.Run(p, edb, parallel.RunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: witness search ---

func BenchmarkWitnessSearch(b *testing.B) {
	s, err := analysis.ExtractSirup(MustParse(`
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`).ast)
	if err != nil {
		b.Fatal(err)
	}
	procs := hashpart.RangeProcs(4)
	F := network.BitVectorF(2)
	d, err := network.Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs)
	if err != nil {
		b.Fatal(err)
	}
	h := network.FuncFromBits("h6", F, hashpart.GParity)
	spec := rewrite.SirupSpec{Procs: procs, VR: []string{"Y", "Z"}, VE: []string{"X", "Y"}, H: h, HP: h}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := network.FindWitnesses(s, d, spec, 10, 6, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: restricted topology ---

func BenchmarkRestrictedTopology(b *testing.B) {
	s, err := analysis.ExtractSirup(MustParse(`
p(X, Y) :- q(X, Y).
p(X, Y) :- p(Y, Z), r(X, Z).
`).ast)
	if err != nil {
		b.Fatal(err)
	}
	procs := hashpart.RangeProcs(4)
	F := network.BitVectorF(2)
	d, err := network.Derive(s, []string{"Y", "Z"}, []string{"X", "Y"}, F, F, procs)
	if err != nil {
		b.Fatal(err)
	}
	h := network.FuncFromBits("h6", F, hashpart.GParity)
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: procs, VR: []string{"Y", "Z"}, VE: []string{"X", "Y"}, H: h,
	})
	if err != nil {
		b.Fatal(err)
	}
	edb := relation.Store{
		"q": workload.RandomGraph(24, 70, 1),
		"r": workload.RandomGraph(24, 70, 2),
	}
	topo := parallel.NewTopology(d.CrossEdges())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.Run(p, edb, parallel.RunConfig{Topology: topo}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- termination detectors (design ablation) ---

func BenchmarkTerminationModes(b *testing.B) {
	edb := relation.Store{"par": workload.RandomGraph(60, 240, 7)}
	for _, tc := range []struct {
		name string
		mode parallel.TerminationMode
	}{
		{"credit", parallel.TermCredit},
		{"counting", parallel.TermCounting},
		{"dijkstra-scholten", parallel.TermDijkstraScholten},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			s := benchSirup(b)
			p, err := parallel.BuildQ(s, rewrite.SirupSpec{
				Procs: hashpart.RangeProcs(4),
				VR:    []string{"Z"}, VE: []string{"X"},
				H: hashpart.ModHash{N: 4},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(p, edb, parallel.RunConfig{Mode: tc.mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- termination substrate microbenchmarks ---

func BenchmarkCreditDetector(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := termdetect.NewCredit()
		c.Add(1000)
		for k := 0; k < 1000; k++ {
			c.Done()
		}
		<-c.Quiesced()
	}
}

// --- parsing ---

func BenchmarkParse(b *testing.B) {
	var src string
	{
		prog := workload.AncestorProgram()
		src = prog.String()
		for i := 0; i < 500; i++ {
			src += fmt.Sprintf("par(v%d, v%d).\n", i, i+1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- transport ablation: goroutine channels vs TCP sockets ---

func BenchmarkTransports(b *testing.B) {
	edb := relation.Store{"par": workload.RandomGraph(60, 240, 7)}
	s := func() *analysis.Sirup {
		s, err := analysis.ExtractSirup(workload.AncestorProgram())
		if err != nil {
			b.Fatal(err)
		}
		return s
	}()
	p, err := parallel.BuildQ(s, rewrite.SirupSpec{
		Procs: hashpart.RangeProcs(4),
		VR:    []string{"Z"}, VE: []string{"X"},
		H: hashpart.ModHash{N: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("goroutines", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Run(p, edb, parallel.RunConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dist.Run(p, edb, dist.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- stratified negation (extension) ---

func BenchmarkStratifiedNegation(b *testing.B) {
	g := workload.RandomGraph(60, 200, 3)
	var src string
	{
		s := `
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X, Y).
unreachable(X) :- node(X), !reach(X).
source(n0).
`
		for _, e := range g.Rows() {
			s += fmt.Sprintf("edge(n%d, n%d).\n", e[0], e[1])
		}
		for i := 0; i < 60; i++ {
			s += fmt.Sprintf("node(n%d).\n", i)
		}
		src = s
	}
	prog := MustParse(src)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(context.Background(), prog, nil, EvalOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EvalParallel(context.Background(), prog, nil, EvalOptions{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- observability: cost of the event layer on the transitive-closure run ---

// BenchmarkObservability pins the tentpole's zero-cost claim: "off" (no
// sink) must stay within noise of the pre-observability engine, and
// "counting" shows the price of the built-in metrics sink. Run with
// -bench=Observability and compare the off/counting pairs.
func BenchmarkObservability(b *testing.B) {
	src := `
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
`
	for i := 0; i < 300; i++ {
		src += fmt.Sprintf("par(v%d, v%d).\npar(v%d, v%d).\n", i, (i+1)%300, i, (i*7+3)%300)
	}
	prog := MustParse(src)
	var edb Store
	for _, engine := range []struct {
		name string
		run  func(opts EvalOptions) error
	}{
		{"seq", func(opts EvalOptions) error {
			_, err := Eval(context.Background(), prog, edb, opts)
			return err
		}},
		{"par4", func(opts EvalOptions) error {
			_, err := EvalParallel(context.Background(), prog, edb, opts)
			return err
		}},
	} {
		b.Run(engine.name+"/off", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := engine.run(EvalOptions{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(engine.name+"/counting", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := engine.run(EvalOptions{Workers: 4, Metrics: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
